// Package netchaos is the network-level sibling of internal/fault: a
// deterministic, seeded fault layer injected between the cluster
// coordinator and its shard daemons. Where fault corrupts tokens inside
// one systolic grid (the paper's §2/§8 "identical cells, detect and
// retire" argument), netchaos corrupts the crossbar that stands between
// devices once the crossbar is a real network — dropped requests, torn
// acks, injected latency, partitions, flipped response bytes, duplicate
// delivery.
//
// The layer has two injection points:
//
//   - Transport: an http.RoundTripper wrapping the coordinator's shard
//     transport. Every decision (drop? how much latency? corrupt which
//     byte?) hashes the campaign seed with a per-request nonce through
//     splitmix64, so a chaos run is exactly reproducible from its spec —
//     the same discipline fault.Injector applies per cell-pulse.
//
//   - Proxy: an optional TCP relay for the cases HTTP round-trip
//     granularity cannot express — torn byte streams (the connection dies
//     mid-response) and slow-drip transfers (bytes trickle, stalling
//     readers without ever failing fast).
//
// Specs use a CLI grammar mirroring fault's plan specs:
//
//	seed=7,drop=0.05,latency=20ms±10ms,partition=shard1:30s,corrupt=0.01,dup=0.02
package netchaos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// PartitionSpec is one partition window: requests to hosts matching
// Target fail while the window is active.
type PartitionSpec struct {
	// Target is matched as a substring of the request's URL host (an
	// address like "127.0.0.1:7001", or any operator-chosen label baked
	// into shard hostnames).
	Target string
	// After is the window's start, measured from the transport's first
	// activation; zero starts partitioned.
	After time.Duration
	// For is the window length; zero means the partition never heals.
	For time.Duration
	// OneWay makes the partition asymmetric: the request is delivered
	// (the shard performs its side effects) but the response is dropped —
	// the torn-ack case that makes retried writes double-apply unless
	// they are idempotent.
	OneWay bool
}

// Spec describes one network-chaos campaign. The zero value injects
// nothing; build specs with ParseSpec or fill fields and call Validate.
type Spec struct {
	// Seed makes the campaign reproducible: two transports built from the
	// same spec make identical decisions in request order.
	Seed int64

	// Drop is the probability a request is dropped before it reaches the
	// shard (connection refused / reset analogue).
	Drop float64

	// DropResp is the probability the request is delivered but its
	// response is dropped — the shard applied the mutation, the caller
	// saw a network error (the classic retry/double-apply trap).
	DropResp float64

	// Latency and Jitter delay each request by Latency ± uniform Jitter.
	Latency time.Duration
	Jitter  time.Duration

	// Corrupt is the probability one byte of the response body is
	// flipped (position chosen deterministically).
	Corrupt float64

	// Dup is the probability the request is delivered twice (the
	// duplicate's response is discarded) — at-least-once delivery.
	Dup float64

	// Partitions are timed unreachability windows per target.
	Partitions []PartitionSpec
}

// Validate checks the spec's fields.
func (s *Spec) Validate() error {
	if s == nil {
		return fmt.Errorf("netchaos: nil spec")
	}
	for _, p := range []struct {
		name string
		v    float64
	}{{"drop", s.Drop}, {"dropresp", s.DropResp}, {"corrupt", s.Corrupt}, {"dup", s.Dup}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("netchaos: %s=%v outside [0, 1]", p.name, p.v)
		}
	}
	if s.Latency < 0 || s.Jitter < 0 {
		return fmt.Errorf("netchaos: negative latency/jitter")
	}
	if s.Jitter > 0 && s.Latency == 0 {
		return fmt.Errorf("netchaos: jitter without base latency")
	}
	for _, p := range s.Partitions {
		if p.Target == "" {
			return fmt.Errorf("netchaos: partition with empty target")
		}
		if p.After < 0 || p.For < 0 {
			return fmt.Errorf("netchaos: partition %q has negative timing", p.Target)
		}
	}
	return nil
}

// Quiet reports whether the spec injects nothing at all.
func (s *Spec) Quiet() bool {
	return s.Drop == 0 && s.DropResp == 0 && s.Latency == 0 &&
		s.Corrupt == 0 && s.Dup == 0 && len(s.Partitions) == 0
}

// String renders the spec in the grammar ParseSpec accepts (canonical
// form: fixed key order, "±" jitter, "delay+dur" windows).
func (s *Spec) String() string {
	var opts []string
	if s.Seed != 0 {
		opts = append(opts, "seed="+strconv.FormatInt(s.Seed, 10))
	}
	addP := func(key string, v float64) {
		if v > 0 {
			opts = append(opts, key+"="+strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
	addP("drop", s.Drop)
	addP("dropresp", s.DropResp)
	if s.Latency > 0 {
		l := "latency=" + s.Latency.String()
		if s.Jitter > 0 {
			l += "±" + s.Jitter.String()
		}
		opts = append(opts, l)
	}
	addP("corrupt", s.Corrupt)
	addP("dup", s.Dup)
	for _, p := range s.Partitions {
		w := "partition=" + p.Target + ":"
		if p.After > 0 {
			w += p.After.String() + "+"
		}
		w += p.For.String()
		if p.OneWay {
			w += ":oneway"
		}
		opts = append(opts, w)
	}
	return strings.Join(opts, ",")
}

// ParseSpec parses a chaos spec of the form
//
//	key=value,key=value,...
//
// with keys
//
//	seed=<int>                 determinism seed
//	drop=<0..1>                drop the request before delivery
//	dropresp=<0..1>            deliver, then drop the response (torn ack)
//	latency=<dur>[±<dur>]      per-request delay, base ± uniform jitter
//	                           ("+-" is accepted for "±")
//	corrupt=<0..1>             flip one response-body byte
//	dup=<0..1>                 deliver the request twice
//	partition=<target>:[<delay>+]<dur>[:oneway]
//	                           requests to hosts matching <target> fail
//	                           from <delay> (default 0) for <dur> (0 =
//	                           forever); :oneway delivers the request but
//	                           drops the response (repeatable)
//
// Example: "seed=7,drop=0.05,latency=20ms±10ms,partition=shard1:30s,corrupt=0.01,dup=0.02".
func ParseSpec(spec string) (*Spec, error) {
	s := &Spec{}
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, fmt.Errorf("netchaos: empty spec")
	}
	for _, kv := range splitTop(spec) {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("netchaos: option %q is not key=value", kv)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		var err error
		switch key {
		case "seed":
			if s.Seed, err = strconv.ParseInt(val, 10, 64); err != nil {
				return nil, fmt.Errorf("netchaos: bad seed %q: %v", val, err)
			}
		case "drop":
			if s.Drop, err = parseProb(val); err != nil {
				return nil, fmt.Errorf("netchaos: bad drop %q: %v", val, err)
			}
		case "dropresp":
			if s.DropResp, err = parseProb(val); err != nil {
				return nil, fmt.Errorf("netchaos: bad dropresp %q: %v", val, err)
			}
		case "corrupt":
			if s.Corrupt, err = parseProb(val); err != nil {
				return nil, fmt.Errorf("netchaos: bad corrupt %q: %v", val, err)
			}
		case "dup":
			if s.Dup, err = parseProb(val); err != nil {
				return nil, fmt.Errorf("netchaos: bad dup %q: %v", val, err)
			}
		case "latency":
			base, jitter, hasJitter := cutJitter(val)
			if s.Latency, err = time.ParseDuration(base); err != nil {
				return nil, fmt.Errorf("netchaos: bad latency %q: %v", val, err)
			}
			if hasJitter {
				if s.Jitter, err = time.ParseDuration(jitter); err != nil {
					return nil, fmt.Errorf("netchaos: bad latency jitter %q: %v", val, err)
				}
			}
		case "partition":
			p, err := parsePartition(val)
			if err != nil {
				return nil, err
			}
			s.Partitions = append(s.Partitions, p)
		default:
			return nil, fmt.Errorf("netchaos: unknown option %q", key)
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// splitTop splits a spec on commas. Partition targets cannot contain
// commas (they are host substrings), so a plain split is the grammar.
func splitTop(s string) []string { return strings.Split(s, ",") }

// parseProb parses a probability in [0, 1].
func parseProb(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if v < 0 || v > 1 {
		return 0, fmt.Errorf("probability %v outside [0, 1]", v)
	}
	return v, nil
}

// cutJitter splits "20ms±10ms" (or "20ms+-10ms") into base and jitter.
func cutJitter(s string) (base, jitter string, ok bool) {
	if b, j, found := strings.Cut(s, "±"); found {
		return b, j, true
	}
	if b, j, found := strings.Cut(s, "+-"); found {
		return b, j, true
	}
	return s, "", false
}

// parsePartition parses "<target>:[<delay>+]<dur>[:oneway]".
func parsePartition(val string) (PartitionSpec, error) {
	var p PartitionSpec
	parts := strings.Split(val, ":")
	// The target itself may contain a colon (host:port), so the window is
	// the first segment that parses as a timing spec, scanning from the
	// right; everything before it is the target.
	winIdx := -1
	for i := len(parts) - 1; i > 0; i-- {
		seg := parts[i]
		if seg == "oneway" {
			if i != len(parts)-1 {
				return p, fmt.Errorf("netchaos: bad partition %q (:oneway must be last)", val)
			}
			p.OneWay = true
			continue
		}
		if _, _, err := parseWindow(seg); err == nil {
			winIdx = i
			break
		}
	}
	if winIdx <= 0 {
		return p, fmt.Errorf("netchaos: bad partition %q (want <target>:[<delay>+]<dur>[:oneway])", val)
	}
	p.Target = strings.Join(parts[:winIdx], ":")
	if p.Target == "" {
		return p, fmt.Errorf("netchaos: partition %q has empty target", val)
	}
	var err error
	if p.After, p.For, err = parseWindow(parts[winIdx]); err != nil {
		return p, fmt.Errorf("netchaos: bad partition window in %q: %v", val, err)
	}
	return p, nil
}

// parseWindow parses "[<delay>+]<dur>".
func parseWindow(s string) (after, dur time.Duration, err error) {
	if d, rest, ok := strings.Cut(s, "+"); ok {
		if after, err = time.ParseDuration(d); err != nil {
			return 0, 0, err
		}
		s = rest
	}
	if dur, err = time.ParseDuration(s); err != nil {
		return 0, 0, err
	}
	return after, dur, nil
}

// splitmix64 is the shared mixing function driving every injection
// decision (identical to fault's; duplicated to keep the packages
// dependency-free of each other).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// rateThreshold converts a probability into a uint64 comparison threshold.
func rateThreshold(rate float64) uint64 {
	switch {
	case rate <= 0:
		return 0
	case rate >= 1:
		return ^uint64(0)
	}
	return uint64(rate * float64(1<<63) * 2)
}

// Kinds of injection, for metrics and test accounting.
const (
	KindDrop      = "drop"
	KindDropResp  = "dropresp"
	KindLatency   = "latency"
	KindCorrupt   = "corrupt"
	KindDup       = "dup"
	KindPartition = "partition"
)

// Kinds lists every injection kind (sorted), for metric pre-registration.
func Kinds() []string {
	ks := []string{KindDrop, KindDropResp, KindLatency, KindCorrupt, KindDup, KindPartition}
	sort.Strings(ks)
	return ks
}

// SpecHelp is a one-line usage string for -netchaos flags.
func SpecHelp() string {
	return "chaos spec: seed=N,drop=P,dropresp=P,latency=DUR[±DUR],corrupt=P,dup=P," +
		"partition=TARGET:[DELAY+]DUR[:oneway], e.g. seed=7,drop=0.05,latency=20ms±10ms,partition=shard1:30s"
}
