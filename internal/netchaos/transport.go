package netchaos

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"systolicdb/internal/obs"
)

// Error is the failure a chaos injection surfaces to the caller. It is a
// transport-level error (not an HTTP status), so the cluster client
// classifies it the same way it classifies a real connection reset:
// retryable.
type Error struct {
	Kind string // which injection fired (KindDrop, KindPartition, ...)
	Host string // the target host the request was headed for
}

func (e *Error) Error() string {
	return fmt.Sprintf("netchaos: injected %s (host %s)", e.Kind, e.Host)
}

// Per-kind salts mixed into the decision hash so one request's drop and
// corrupt decisions are independent coin flips.
const (
	saltDrop     = 0x9e90_0001
	saltDropResp = 0x9e90_0002
	saltLatency  = 0x9e90_0003
	saltJitter   = 0x9e90_0004
	saltCorrupt  = 0x9e90_0005
	saltCorrByte = 0x9e90_0006
	saltDup      = 0x9e90_0007
)

// Transport is an http.RoundTripper that applies a Spec's faults to every
// request passing through it. All decisions are pure functions of
// (spec.Seed, request ordinal), so a campaign replays identically given
// the same request order.
type Transport struct {
	spec *Spec
	base http.RoundTripper

	n      atomic.Uint64 // request ordinal
	counts [6]atomic.Int64

	// The partition clock epoch, set lazily at the first RoundTrip so
	// PartitionSpec.After is measured from first activation, not from
	// transport construction (a coordinator may be built long before
	// traffic starts).
	startOnce sync.Once
	start     time.Time

	// Injectable clocks for tests; production uses time.Now and a
	// context-aware sleep.
	now   func() time.Time
	sleep func(ctx context.Context, d time.Duration) error

	metrics [6]*obs.Counter
}

// kindIndex maps injection kinds onto count slots.
var kindIndex = map[string]int{
	KindDrop: 0, KindDropResp: 1, KindLatency: 2,
	KindCorrupt: 3, KindDup: 4, KindPartition: 5,
}

// NewTransport wraps base (nil selects http.DefaultTransport) with the
// spec's faults, recording injection counts into reg (nil selects
// obs.Default). The partition clock starts at the first request through
// the transport: a window with delay 5s opens five seconds after first
// activation.
func NewTransport(spec *Spec, base http.RoundTripper, reg *obs.Registry) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	if reg == nil {
		reg = obs.Default
	}
	t := &Transport{
		spec:  spec,
		base:  base,
		now:   time.Now,
		sleep: sleepCtx,
	}
	for kind, i := range kindIndex {
		t.metrics[i] = reg.Counter("netchaos_injections_total", obs.Labels{"kind": kind})
	}
	return t
}

// Counts returns per-kind injection totals since the transport was built.
func (t *Transport) Counts() map[string]int64 {
	out := make(map[string]int64, len(kindIndex))
	for kind, i := range kindIndex {
		out[kind] = t.counts[i].Load()
	}
	return out
}

// Total returns the total number of injections across all kinds.
func (t *Transport) Total() int64 {
	var sum int64
	for i := range t.counts {
		sum += t.counts[i].Load()
	}
	return sum
}

func (t *Transport) record(kind string) {
	i := kindIndex[kind]
	t.counts[i].Add(1)
	t.metrics[i].Inc()
}

// decide is one deterministic coin flip for request ordinal i.
func (t *Transport) decide(i uint64, salt uint64, p float64) bool {
	if p <= 0 {
		return false
	}
	return splitmix64(uint64(t.spec.Seed)^splitmix64(i*0x9e3779b97f4a7c15+salt)) < rateThreshold(p)
}

// draw returns a deterministic value in [0, n) for request ordinal i.
func (t *Transport) draw(i uint64, salt uint64, n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return splitmix64(uint64(t.spec.Seed)^splitmix64(i*0xbf58476d1ce4e5b9+salt)) % n
}

// partitioned reports whether a partition window covers host right now,
// and whether that window is one-way (deliver request, drop response).
func (t *Transport) partitioned(host string) (hit, oneWay bool) {
	if len(t.spec.Partitions) == 0 {
		return false, false
	}
	elapsed := t.now().Sub(t.start)
	for _, p := range t.spec.Partitions {
		if !hostMatches(host, p.Target) {
			continue
		}
		if elapsed < p.After {
			continue
		}
		if p.For > 0 && elapsed >= p.After+p.For {
			continue
		}
		if !p.OneWay {
			return true, false // a symmetric window dominates
		}
		hit, oneWay = true, true
	}
	return hit, oneWay
}

// hostMatches reports whether a partition target selects a host. Targets
// are substrings ("shard1", "127.0.0.1:7001"), matching how operators
// name shards in -shards specs.
func hostMatches(host, target string) bool {
	return target != "" && bytes.Contains([]byte(host), []byte(target))
}

// sleepCtx blocks for d or until ctx is done, whichever comes first: an
// injected delay must not hold a canceled request's goroutine hostage
// for the full duration.
func sleepCtx(ctx context.Context, d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// RoundTrip applies the spec's faults around one request.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.startOnce.Do(func() { t.start = t.now() })
	i := t.n.Add(1) - 1
	host := req.URL.Host

	// Latency first: a partitioned network is still a slow one.
	if t.spec.Latency > 0 && t.decide(i, saltLatency, 1) {
		d := t.spec.Latency
		if t.spec.Jitter > 0 {
			span := uint64(2*t.spec.Jitter) + 1
			d += time.Duration(t.draw(i, saltJitter, span)) - t.spec.Jitter
		}
		if d > 0 {
			t.record(KindLatency)
			if err := t.sleep(req.Context(), d); err != nil {
				closeBody(req)
				return nil, err
			}
		}
	}

	dropResp := false
	if hit, oneWay := t.partitioned(host); hit {
		if !oneWay {
			t.record(KindPartition)
			closeBody(req)
			return nil, &Error{Kind: KindPartition, Host: host}
		}
		// One-way: deliver the request, then drop the response below.
		t.record(KindPartition)
		dropResp = true
	}

	if t.decide(i, saltDrop, t.spec.Drop) {
		t.record(KindDrop)
		closeBody(req)
		return nil, &Error{Kind: KindDrop, Host: host}
	}

	if t.decide(i, saltDropResp, t.spec.DropResp) {
		t.record(KindDropResp)
		dropResp = true
	}

	// Duplicate delivery: send a full copy first and discard its
	// response, so the shard observes the request twice. Only possible
	// when the body is replayable (GetBody) or absent.
	if t.decide(i, saltDup, t.spec.Dup) {
		if dup := cloneRequest(req); dup != nil {
			t.record(KindDup)
			if resp, err := t.base.RoundTrip(dup); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}

	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}

	if dropResp {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, &Error{Kind: KindDropResp, Host: host}
	}

	if t.decide(i, saltCorrupt, t.spec.Corrupt) {
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		if len(body) > 0 {
			pos := t.draw(i, saltCorrByte, uint64(len(body)))
			body[pos] ^= 1 << t.draw(i, saltCorrByte+1, 8)
			t.record(KindCorrupt)
		}
		resp.Body = io.NopCloser(bytes.NewReader(body))
		resp.ContentLength = int64(len(body))
	}

	return resp, nil
}

// closeBody discharges the RoundTripper contract (the transport owns the
// request body, even on error) for requests dropped before delivery.
func closeBody(req *http.Request) {
	if req.Body != nil {
		req.Body.Close()
	}
}

// cloneRequest builds an independent copy of req for duplicate delivery,
// or nil if the body cannot be replayed.
func cloneRequest(req *http.Request) *http.Request {
	dup := req.Clone(req.Context())
	switch {
	case req.Body == nil || req.Body == http.NoBody:
		return dup
	case req.GetBody != nil:
		body, err := req.GetBody()
		if err != nil {
			return nil
		}
		dup.Body = body
		return dup
	}
	return nil
}
