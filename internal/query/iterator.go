// Streaming (pull-based) executor: composable tuple iterators that move
// one tuple at a time between plan operators, the way §4's pipelined
// operator chaining moves tuples between arrays every pulse. Host-only
// chains — select, project, dedup, union, and the probe side of join /
// intersect / difference — never hold a full intermediate relation;
// pipeline-breaking operators (a join's build side, membership sets,
// Divide) are the only explicit materialization points, and ExecStats
// reports their footprint via PeakTuples / MaterializedNodes.
package query

import (
	"context"
	"encoding/binary"
	"fmt"

	"systolicdb/internal/bitset"
	"systolicdb/internal/cells"
	"systolicdb/internal/join"
	"systolicdb/internal/lptdisk"
	"systolicdb/internal/relation"
)

// TupleIterator is the streaming executor's operator interface. Next
// returns the next result tuple, or false when the stream is exhausted or
// failed — the two are distinguished by Err, which callers must check
// after the final Next. Schema describes the width and domains of every
// tuple the iterator yields. Close releases operator-owned state (build
// tables, dedup sets) and propagates to children; it is idempotent, and
// iterators must not be used after Close.
type TupleIterator interface {
	Next() (relation.Tuple, bool)
	Close()
	Err() error
	Schema() *relation.Schema
}

// iterBatch is how many pulls an iterator lets pass between context
// checks: frequent enough that a deadline interrupts a long scan
// mid-node, rare enough to stay off the per-tuple hot path.
const iterBatch = 256

// peakTracker counts tuples held in executor-owned storage (materialized
// intermediates, build tables, dedup sets, the accumulating result) so
// that PeakTuples is comparable between the streaming and materializing
// executors. The frame stack serves the materializing path, whose
// sequential DFS holds every child result exactly until the parent
// operator finishes. All methods are nil-safe.
type peakTracker struct {
	cur, peak    int
	frames       []int
	materialized int
}

func (t *peakTracker) acquire(n int) {
	if t == nil {
		return
	}
	t.cur += n
	if t.cur > t.peak {
		t.peak = t.cur
	}
}

func (t *peakTracker) release(n int) {
	if t == nil {
		return
	}
	t.cur -= n
}

func (t *peakTracker) breaker() {
	if t == nil {
		return
	}
	t.materialized++
}

// enter pushes a frame for a materializing plan node before its children
// run; exit pops it, releasing every child result accumulated in the
// frame and crediting the node's own result to the parent (which releases
// it in turn when the parent operator completes).
func (t *peakTracker) enter() {
	if t == nil {
		return
	}
	t.frames = append(t.frames, 0)
}

func (t *peakTracker) exit(own int) {
	if t == nil {
		return
	}
	last := len(t.frames) - 1
	t.release(t.frames[last])
	t.frames = t.frames[:last]
	if last > 0 {
		t.frames[last-1] += own
	}
}

// tupleKey encodes a tuple as a map key. relation.Tuple's own key() is
// unexported; varint framing keeps multi-column values unambiguous.
func tupleKey(t relation.Tuple) string {
	b := make([]byte, 0, len(t)*binary.MaxVarintLen64)
	for _, e := range t {
		b = binary.AppendVarint(b, int64(e))
	}
	return string(b)
}

// iterCore is the shared half of every iterator: schema, terminal state,
// and the per-batch cancellation check.
type iterCore struct {
	ctx    context.Context
	node   Node
	schema *relation.Schema
	err    error
	done   bool
	closed bool
	ticks  int
}

func (c *iterCore) Schema() *relation.Schema { return c.schema }
func (c *iterCore) Err() error               { return c.err }

// tick checks the context every iterBatch calls; iterators call it once
// per input row pulled (not per output row), so a long non-matching
// streak still observes cancellation.
func (c *iterCore) tick() error {
	c.ticks++
	if c.ticks%iterBatch != 0 {
		return nil
	}
	if err := c.ctx.Err(); err != nil {
		return fmt.Errorf("query: stream cancelled at %s node: %w", opName(c.node), err)
	}
	return nil
}

func (c *iterCore) fail(err error) (relation.Tuple, bool) {
	c.err = err
	c.done = true
	return nil, false
}

// finish ends the stream, adopting the child's terminal error if any.
func (c *iterCore) finish(children ...TupleIterator) (relation.Tuple, bool) {
	c.done = true
	for _, ch := range children {
		if c.err == nil {
			c.err = ch.Err()
		}
	}
	return nil, false
}

// scanIter streams a base relation out of the catalog.
type scanIter struct {
	iterCore
	rel *relation.Relation
	pos int
}

func (s *scanIter) Next() (relation.Tuple, bool) {
	if s.done {
		return nil, false
	}
	if err := s.tick(); err != nil {
		return s.fail(err)
	}
	if s.pos >= s.rel.Cardinality() {
		s.done = true
		return nil, false
	}
	t := s.rel.Tuple(s.pos)
	s.pos++
	return t, true
}

func (s *scanIter) Close() { s.done, s.closed = true, true }

// selectIter filters its child through a disk query, tuple at a time.
type selectIter struct {
	iterCore
	child TupleIterator
	query lptdisk.Query
}

func (s *selectIter) Next() (relation.Tuple, bool) {
	if s.done {
		return nil, false
	}
	for {
		if err := s.tick(); err != nil {
			return s.fail(err)
		}
		t, ok := s.child.Next()
		if !ok {
			return s.finish(s.child)
		}
		if s.query.Matches(t) {
			return t, true
		}
	}
}

func (s *selectIter) Close() {
	if !s.closed {
		s.closed = true
		s.child.Close()
	}
	s.done = true
}

// dedupIter yields the first occurrence of each (optionally projected)
// tuple, the remove-duplicates array's keep-first semantics. With cols
// set it is the streaming Project (project-then-dedup, like
// dedup.Project).
type dedupIter struct {
	iterCore
	child TupleIterator
	cols  []int
	seen  map[string]struct{}
	tr    *peakTracker
}

func (d *dedupIter) Next() (relation.Tuple, bool) {
	if d.done {
		return nil, false
	}
	for {
		if err := d.tick(); err != nil {
			return d.fail(err)
		}
		t, ok := d.child.Next()
		if !ok {
			return d.finish(d.child)
		}
		if d.cols != nil {
			t = t.Project(d.cols)
		}
		k := tupleKey(t)
		if _, dup := d.seen[k]; dup {
			continue
		}
		d.seen[k] = struct{}{}
		d.tr.acquire(1) // the seen set retains one tuple key
		return t, true
	}
}

func (d *dedupIter) Close() {
	if !d.closed {
		d.closed = true
		d.tr.release(len(d.seen))
		d.child.Close()
	}
	d.done = true
}

// unionIter streams dedup(concat(l, r)): all of l, then r, suppressing
// anything already emitted (dedup.Union's keep-first order).
type unionIter struct {
	iterCore
	l, r TupleIterator
	onR  bool
	seen map[string]struct{}
	tr   *peakTracker
}

func (u *unionIter) Next() (relation.Tuple, bool) {
	if u.done {
		return nil, false
	}
	for {
		if err := u.tick(); err != nil {
			return u.fail(err)
		}
		src := u.l
		if u.onR {
			src = u.r
		}
		t, ok := src.Next()
		if !ok {
			if err := src.Err(); err != nil {
				return u.fail(err)
			}
			if u.onR {
				return u.finish()
			}
			u.onR = true
			continue
		}
		k := tupleKey(t)
		if _, dup := u.seen[k]; dup {
			continue
		}
		u.seen[k] = struct{}{}
		u.tr.acquire(1)
		return t, true
	}
}

func (u *unionIter) Close() {
	if !u.closed {
		u.closed = true
		u.tr.release(len(u.seen))
		u.l.Close()
		u.r.Close()
	}
	u.done = true
}

// membershipIter is the probe side of Intersect (want=true) and
// Difference (want=false): the build child is drained into a set — a
// pipeline breaker — and probe tuples stream through the membership
// test, preserving the probe side's duplicates exactly like
// intersect.Intersection / intersect.Difference.
type membershipIter struct {
	iterCore
	probe, build TupleIterator
	want         bool
	built        bool
	set          map[string]struct{}
	tr           *peakTracker
}

func (m *membershipIter) Next() (relation.Tuple, bool) {
	if m.done {
		return nil, false
	}
	if !m.built {
		if err := m.buildSet(); err != nil {
			return m.fail(err)
		}
	}
	for {
		if err := m.tick(); err != nil {
			return m.fail(err)
		}
		t, ok := m.probe.Next()
		if !ok {
			return m.finish(m.probe)
		}
		if _, in := m.set[tupleKey(t)]; in == m.want {
			return t, true
		}
	}
}

func (m *membershipIter) buildSet() error {
	m.built = true
	m.set = make(map[string]struct{})
	for {
		t, ok := m.build.Next()
		if !ok {
			break
		}
		k := tupleKey(t)
		if _, dup := m.set[k]; !dup {
			m.set[k] = struct{}{}
			m.tr.acquire(1)
		}
	}
	if err := m.build.Err(); err != nil {
		return err
	}
	m.build.Close()
	m.tr.breaker()
	return nil
}

func (m *membershipIter) Close() {
	if !m.closed {
		m.closed = true
		m.tr.release(len(m.set))
		m.probe.Close()
		m.build.Close()
	}
	m.done = true
}

// joinIter streams the probe (A) side of a join against a materialized
// build (B) side — the breaker. Equi-joins probe a hash table on B's
// join key; θ-joins fall back to a per-probe scan of B applying the
// comparison operators cell-for-cell like join.ReferenceT. Output rows
// are the probe tuple followed by B's kept columns (bKeep), matching
// join.Materialize's layout and row-major emission order.
type joinIter struct {
	iterCore
	probe, build TupleIterator
	spec         join.Spec // Ops normalized non-nil
	equi         bool
	bKeep        []int
	built        bool
	bTuples      []relation.Tuple
	byKey        map[string][]int
	cur          relation.Tuple
	haveCur      bool
	matches      []int // pending B indexes for cur (equi)
	mi           int
	scanJ        int // next B index to test for cur (θ)
	tr           *peakTracker
}

func (j *joinIter) Next() (relation.Tuple, bool) {
	if j.done {
		return nil, false
	}
	if !j.built {
		if err := j.buildTable(); err != nil {
			return j.fail(err)
		}
	}
	for {
		if j.haveCur {
			if j.equi {
				if j.mi < len(j.matches) {
					t := j.emit(j.bTuples[j.matches[j.mi]])
					j.mi++
					return t, true
				}
			} else {
				for j.scanJ < len(j.bTuples) {
					if err := j.tick(); err != nil {
						return j.fail(err)
					}
					bt := j.bTuples[j.scanJ]
					j.scanJ++
					if j.thetaMatch(bt) {
						return j.emit(bt), true
					}
				}
			}
			j.haveCur = false
		}
		if err := j.tick(); err != nil {
			return j.fail(err)
		}
		t, ok := j.probe.Next()
		if !ok {
			return j.finish(j.probe)
		}
		j.cur, j.haveCur = t, true
		if j.equi {
			j.matches = j.byKey[tupleKey(t.Project(j.spec.ACols))]
			j.mi = 0
		} else {
			j.scanJ = 0
		}
	}
}

func (j *joinIter) thetaMatch(bt relation.Tuple) bool {
	for k := range j.spec.ACols {
		if !j.spec.Ops[k].Apply(j.cur[j.spec.ACols[k]], bt[j.spec.BCols[k]]) {
			return false
		}
	}
	return true
}

func (j *joinIter) emit(bt relation.Tuple) relation.Tuple {
	out := make(relation.Tuple, 0, len(j.cur)+len(j.bKeep))
	out = append(out, j.cur...)
	for _, c := range j.bKeep {
		out = append(out, bt[c])
	}
	return out
}

func (j *joinIter) buildTable() error {
	j.built = true
	for {
		t, ok := j.build.Next()
		if !ok {
			break
		}
		j.bTuples = append(j.bTuples, t)
		j.tr.acquire(1)
	}
	if err := j.build.Err(); err != nil {
		return err
	}
	j.build.Close()
	if j.equi {
		j.byKey = make(map[string][]int, len(j.bTuples))
		for i, t := range j.bTuples {
			k := tupleKey(t.Project(j.spec.BCols))
			j.byKey[k] = append(j.byKey[k], i)
		}
	}
	j.tr.breaker()
	return nil
}

func (j *joinIter) Close() {
	if !j.closed {
		j.closed = true
		j.tr.release(len(j.bTuples))
		j.bTuples, j.byKey = nil, nil
		j.probe.Close()
		j.build.Close()
	}
	j.done = true
}

// divideIter is a full pipeline breaker: division's x-vector semantics
// need the complete dividend and divisor, so both children are drained
// and the word-parallel divide runs once; the quotient then streams out.
type divideIter struct {
	iterCore
	l, r               TupleIterator
	aQuot, aDiv, bCols []int
	built              bool
	out                *relation.Relation
	pos                int
	tr                 *peakTracker
	cost               *nodeCost
}

func (d *divideIter) Next() (relation.Tuple, bool) {
	if d.done {
		return nil, false
	}
	if !d.built {
		if err := d.run(); err != nil {
			return d.fail(err)
		}
	}
	if err := d.tick(); err != nil {
		return d.fail(err)
	}
	if d.pos >= d.out.Cardinality() {
		d.done = true
		return nil, false
	}
	t := d.out.Tuple(d.pos)
	d.pos++
	return t, true
}

func (d *divideIter) run() error {
	d.built = true
	a, err := drainIter(d.l, d.tr)
	if err != nil {
		return err
	}
	b, err := drainIter(d.r, d.tr)
	if err != nil {
		return err
	}
	res, err := bitset.Divide(a, b, d.aQuot, d.aDiv, d.bCols)
	if err != nil {
		return err
	}
	d.cost.wordOps += res.Stats.WordOps
	d.out = res.Rel
	// The operands are dropped once the quotient exists.
	d.tr.release(a.Cardinality() + b.Cardinality())
	d.tr.acquire(d.out.Cardinality())
	d.tr.breaker()
	d.schema = d.out.Schema()
	return nil
}

func (d *divideIter) Close() {
	if !d.closed {
		d.closed = true
		if d.out != nil {
			d.tr.release(d.out.Cardinality())
		}
		d.l.Close()
		d.r.Close()
	}
	d.done = true
}

// drainIter materializes the remainder of an iterator into a relation and
// closes it, charging the tuples to the tracker.
func drainIter(it TupleIterator, tr *peakTracker) (*relation.Relation, error) {
	out, err := relation.NewRelation(it.Schema(), nil)
	if err != nil {
		return nil, err
	}
	for {
		t, ok := it.Next()
		if !ok {
			break
		}
		if err := out.Append(t); err != nil {
			return nil, err
		}
		tr.acquire(1)
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	it.Close()
	return out, nil
}

// streamBuild constructs an iterator tree for a plan.
type streamBuild struct {
	ctx  context.Context
	cat  Catalog
	tr   *peakTracker
	cost *nodeCost
}

func (b *streamBuild) core(n Node, s *relation.Schema) iterCore {
	return iterCore{ctx: b.ctx, node: n, schema: s}
}

func (b *streamBuild) open(n Node) (TupleIterator, error) {
	switch op := n.(type) {
	case Scan:
		r, ok := b.cat[op.Name]
		if !ok {
			return nil, fmt.Errorf("query: unknown relation %q", op.Name)
		}
		return &scanIter{iterCore: b.core(n, r.Schema()), rel: r}, nil

	case Select:
		child, err := b.open(op.Child)
		if err != nil {
			return nil, err
		}
		if err := op.Query.Validate(child.Schema()); err != nil {
			child.Close()
			return nil, err
		}
		return &selectIter{iterCore: b.core(n, child.Schema()), child: child, query: op.Query}, nil

	case Dedup:
		child, err := b.open(op.Child)
		if err != nil {
			return nil, err
		}
		return &dedupIter{iterCore: b.core(n, child.Schema()), child: child,
			seen: make(map[string]struct{}), tr: b.tr}, nil

	case Project:
		child, err := b.open(op.Child)
		if err != nil {
			return nil, err
		}
		s, err := child.Schema().ProjectSchema(op.Cols)
		if err != nil {
			child.Close()
			return nil, err
		}
		return &dedupIter{iterCore: b.core(n, s), child: child, cols: op.Cols,
			seen: make(map[string]struct{}), tr: b.tr}, nil

	case Union:
		l, r, err := b.openPair(op.L, op.R, true)
		if err != nil {
			return nil, err
		}
		return &unionIter{iterCore: b.core(n, l.Schema()), l: l, r: r,
			seen: make(map[string]struct{}), tr: b.tr}, nil

	case Intersect:
		l, r, err := b.openPair(op.L, op.R, true)
		if err != nil {
			return nil, err
		}
		return &membershipIter{iterCore: b.core(n, l.Schema()), probe: l, build: r,
			want: true, tr: b.tr}, nil

	case Difference:
		l, r, err := b.openPair(op.L, op.R, true)
		if err != nil {
			return nil, err
		}
		return &membershipIter{iterCore: b.core(n, l.Schema()), probe: l, build: r,
			want: false, tr: b.tr}, nil

	case Join:
		l, r, err := b.openPair(op.L, op.R, false)
		if err != nil {
			return nil, err
		}
		spec, equi, schema, bKeep, err := joinSchema(l.Schema(), r.Schema(), op.Spec)
		if err != nil {
			l.Close()
			r.Close()
			return nil, err
		}
		return &joinIter{iterCore: b.core(n, schema), probe: l, build: r,
			spec: spec, equi: equi, bKeep: bKeep, tr: b.tr}, nil

	case Divide:
		l, r, err := b.openPair(op.L, op.R, false)
		if err != nil {
			return nil, err
		}
		// The quotient schema is A projected onto AQuot; computed up front
		// so Schema() is valid before the division runs.
		s, err := l.Schema().ProjectSchema(op.AQuot)
		if err != nil {
			l.Close()
			r.Close()
			return nil, err
		}
		return &divideIter{iterCore: b.core(n, s), l: l, r: r,
			aQuot: op.AQuot, aDiv: op.ADiv, bCols: op.BCols, tr: b.tr, cost: b.cost}, nil
	}
	return nil, fmt.Errorf("query: unsupported plan node %T", n)
}

// openPair opens both children, optionally enforcing union compatibility
// (§2.4), and closes whatever was opened on failure.
func (b *streamBuild) openPair(ln, rn Node, compatible bool) (TupleIterator, TupleIterator, error) {
	l, err := b.open(ln)
	if err != nil {
		return nil, nil, err
	}
	r, err := b.open(rn)
	if err != nil {
		l.Close()
		return nil, nil, err
	}
	if compatible && !l.Schema().UnionCompatible(r.Schema()) {
		l.Close()
		r.Close()
		return nil, nil, fmt.Errorf("query: operands are not union-compatible")
	}
	return l, r, nil
}

// joinSchema validates a join spec against the operand schemas and builds
// the result layout: A's columns, then B's minus the dropped join columns
// (equi-joins only), name collisions prefixed "b_" — the schema-level
// mirror of join.Materialize's resultSchema.
func joinSchema(ls, rs *relation.Schema, spec join.Spec) (join.Spec, bool, *relation.Schema, []int, error) {
	fail := func(err error) (join.Spec, bool, *relation.Schema, []int, error) {
		return join.Spec{}, false, nil, nil, err
	}
	if len(spec.ACols) == 0 {
		return fail(fmt.Errorf("join: no join columns specified"))
	}
	if len(spec.ACols) != len(spec.BCols) {
		return fail(fmt.Errorf("join: %d columns of A against %d of B", len(spec.ACols), len(spec.BCols)))
	}
	if spec.Ops == nil {
		spec.Ops = make([]cells.Op, len(spec.ACols))
	}
	if len(spec.Ops) != len(spec.ACols) {
		return fail(fmt.Errorf("join: %d operators for %d column pairs", len(spec.Ops), len(spec.ACols)))
	}
	equi := true
	for k := range spec.ACols {
		ca, cb := spec.ACols[k], spec.BCols[k]
		if ca < 0 || ca >= ls.Width() {
			return fail(fmt.Errorf("join: column %d of A out of range [0,%d)", ca, ls.Width()))
		}
		if cb < 0 || cb >= rs.Width() {
			return fail(fmt.Errorf("join: column %d of B out of range [0,%d)", cb, rs.Width()))
		}
		if !ls.Col(ca).Domain.Same(rs.Col(cb).Domain) {
			return fail(fmt.Errorf("join: columns %q and %q are not drawn from the same underlying domain",
				ls.Col(ca).Name, rs.Col(cb).Name))
		}
		if spec.Ops[k] != cells.EQ {
			equi = false
		}
	}
	drop := make(map[int]bool)
	if equi {
		for _, c := range spec.BCols {
			drop[c] = true
		}
	}
	names := make(map[string]bool)
	cols := make([]relation.Column, 0, ls.Width()+rs.Width())
	for i := 0; i < ls.Width(); i++ {
		c := ls.Col(i)
		names[c.Name] = true
		cols = append(cols, c)
	}
	var bKeep []int
	for i := 0; i < rs.Width(); i++ {
		if drop[i] {
			continue
		}
		c := rs.Col(i)
		for names[c.Name] {
			c.Name = "b_" + c.Name
		}
		names[c.Name] = true
		cols = append(cols, c)
		bKeep = append(bKeep, i)
	}
	schema, err := relation.NewSchema(cols...)
	if err != nil {
		return fail(err)
	}
	return spec, equi, schema, bKeep, nil
}

// Open builds the streaming iterator tree for a plan without running it.
// The context is observed by every iterator at batch granularity. Callers
// must Close the iterator and check Err after the final Next.
func Open(ctx context.Context, n Node, cat Catalog, o *Options) (TupleIterator, error) {
	if n == nil {
		return nil, fmt.Errorf("query: nil plan node")
	}
	_ = o // reserved: Open currently needs no per-caller options
	b := &streamBuild{ctx: ctx, cat: cat, tr: &peakTracker{}, cost: &nodeCost{}}
	return b.open(n)
}

// execStream runs a plan through the streaming executor, draining the
// iterator tree into a result relation. Stats (PeakTuples,
// MaterializedNodes, WordOps for the divide breaker) land in o.Stats.
func execStream(ctx context.Context, n Node, cat Catalog, o *Options) (*relation.Relation, error) {
	reg := o.registry()
	stop := reg.Timer("query_stream_host_seconds", nil).Start()
	defer stop()
	tr := &peakTracker{}
	var cost nodeCost
	b := &streamBuild{ctx: ctx, cat: cat, tr: tr, cost: &cost}
	it, err := b.open(n)
	if err != nil {
		return nil, err
	}
	defer it.Close()
	out, err := relation.NewRelation(it.Schema(), nil)
	if err != nil {
		return nil, err
	}
	for {
		t, ok := it.Next()
		if !ok {
			break
		}
		tr.acquire(1) // the accumulating result is executor-owned too
		if err := out.Append(t); err != nil {
			return nil, err
		}
	}
	if err := it.Err(); err != nil {
		return nil, err
	}
	reg.Counter("query_stream_execs_total", nil).Inc()
	if o != nil && o.Stats != nil {
		o.Stats.Pulses += cost.pulses
		o.Stats.WordOps += cost.wordOps
		if tr.peak > o.Stats.PeakTuples {
			o.Stats.PeakTuples = tr.peak
		}
		o.Stats.MaterializedNodes += tr.materialized
	}
	return out, nil
}
