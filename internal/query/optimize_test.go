package query

import (
	"math/rand"
	"strings"
	"testing"

	"systolicdb/internal/cells"
	"systolicdb/internal/join"
	"systolicdb/internal/lptdisk"
	"systolicdb/internal/machine"
	"systolicdb/internal/relation"
	"systolicdb/internal/workload"
)

func optCatalog(t *testing.T) Catalog {
	t.Helper()
	a, err := workload.Uniform(601, 24, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := workload.Uniform(602, 24, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	return Catalog{"A": a, "B": b}
}

func ltQ(col int, v int64) lptdisk.Query {
	return lptdisk.Query{{Col: col, Op: cells.LT, Value: relation.Element(v)}}
}

func TestOptimizeSinksSelectToScan(t *testing.T) {
	cat := optCatalog(t)
	plan := Select{
		Child: Union{L: Scan{Name: "A"}, R: Scan{Name: "B"}},
		Query: ltQ(0, 3),
	}
	opt, err := Optimize(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	// Must become union(select(scan(A)), select(scan(B))).
	u, ok := opt.(Union)
	if !ok {
		t.Fatalf("optimized root is %T, want Union", opt)
	}
	if _, ok := u.L.(Select); !ok {
		t.Fatalf("left branch is %T, want Select over scan", u.L)
	}
	if _, ok := u.L.(Select).Child.(Scan); !ok {
		t.Fatal("selection did not sink to the scan")
	}
	// Compiled, the selections are disk-side loads: 2 loads + 1 union.
	tasks, _, err := Compile(opt, cat)
	if err != nil {
		t.Fatal(err)
	}
	loadsWithSelect := 0
	for _, task := range tasks {
		if task.Op == machine.OpLoad && task.Select != nil {
			loadsWithSelect++
		}
	}
	if loadsWithSelect != 2 {
		t.Errorf("%d selecting loads, want 2", loadsWithSelect)
	}
	if len(tasks) != 3 {
		t.Errorf("%d tasks, want 3", len(tasks))
	}
}

func TestOptimizeMergesSelects(t *testing.T) {
	cat := optCatalog(t)
	plan := Select{
		Child: Select{Child: Scan{Name: "A"}, Query: ltQ(0, 4)},
		Query: ltQ(1, 3),
	}
	opt, err := Optimize(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	s, ok := opt.(Select)
	if !ok || len(s.Query) != 2 {
		t.Fatalf("optimized = %#v, want single Select with merged query", opt)
	}
}

func TestOptimizeDedupRules(t *testing.T) {
	cat := optCatalog(t)
	cases := []struct {
		name string
		plan Node
		want string
	}{
		{"dedup-dedup", Dedup{Dedup{Scan{Name: "A"}}}, "dedup(scan(A))"},
		{"dedup-project", Dedup{Project{Child: Scan{Name: "A"}, Cols: []int{0}}}, "project[0](scan(A))"},
		{"dedup-union", Dedup{Union{L: Scan{Name: "A"}, R: Scan{Name: "B"}}}, "union(scan(A), scan(B))"},
		// Outer column 1 of the inner [1,0] permutation is original
		// column 0.
		{"project-project", Project{Child: Project{Child: Scan{Name: "A"}, Cols: []int{1, 0}}, Cols: []int{1}},
			"project[0](scan(A))"},
	}
	for _, c := range cases {
		opt, err := Optimize(c.plan, cat)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got := Render(opt); got != c.want {
			t.Errorf("%s: optimized to %q, want %q", c.name, got, c.want)
		}
	}
}

func TestOptimizeJoinPushdown(t *testing.T) {
	cat := optCatalog(t)
	spec := join.Spec{ACols: []int{0}, BCols: []int{0}}
	plan := Select{
		Child: Join{L: Scan{Name: "A"}, R: Scan{Name: "B"}, Spec: spec},
		Query: ltQ(1, 3), // column 1 belongs to A (width 2)
	}
	opt, err := Optimize(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	j, ok := opt.(Join)
	if !ok {
		t.Fatalf("optimized root is %T, want Join", opt)
	}
	if _, ok := j.L.(Select); !ok {
		t.Fatal("predicate on A's columns not pushed into the join's left input")
	}
	// A predicate on B's part of the join output is pushed into the
	// right input, remapped through the kept-column layout: output
	// column 2 is B's input column 1 (the equi-join drops B column 0).
	plan2 := Select{
		Child: Join{L: Scan{Name: "A"}, R: Scan{Name: "B"}, Spec: spec},
		Query: ltQ(2, 3), // column 2 comes from B
	}
	opt2, err := Optimize(plan2, cat)
	if err != nil {
		t.Fatal(err)
	}
	j2, ok := opt2.(Join)
	if !ok {
		t.Fatalf("optimized root is %T, want Join", opt2)
	}
	rs, ok := j2.R.(Select)
	if !ok {
		t.Fatal("predicate on B's columns not pushed into the join's right input")
	}
	if len(rs.Query) != 1 || rs.Query[0].Col != 1 {
		t.Fatalf("pushed predicate targets column %v, want B input column 1", rs.Query)
	}
	if _, ok := j2.L.(Select); ok {
		t.Fatal("left input gained a spurious select")
	}
	// An out-of-range predicate must stay above the join so execution
	// still reports the error.
	plan3 := Select{
		Child: Join{L: Scan{Name: "A"}, R: Scan{Name: "B"}, Spec: spec},
		Query: ltQ(99, 3),
	}
	opt3, err := Optimize(plan3, cat)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := opt3.(Select); !ok {
		t.Fatalf("optimized root is %T; out-of-range select must stay above the join", opt3)
	}
}

func TestOptimizePreservesResults(t *testing.T) {
	cat := optCatalog(t)
	rng := rand.New(rand.NewSource(603))
	spec := join.Spec{ACols: []int{0}, BCols: []int{0}}

	// A generator of random plan trees over the catalog.
	var gen func(depth int) Node
	gen = func(depth int) Node {
		if depth <= 0 {
			if rng.Intn(2) == 0 {
				return Scan{Name: "A"}
			}
			return Scan{Name: "B"}
		}
		switch rng.Intn(7) {
		case 0:
			return Intersect{L: gen(depth - 1), R: gen(depth - 1)}
		case 1:
			return Union{L: gen(depth - 1), R: gen(depth - 1)}
		case 2:
			return Difference{L: gen(depth - 1), R: gen(depth - 1)}
		case 3:
			return Dedup{Child: gen(depth - 1)}
		case 4:
			// Keep width stable: project both columns, permuted.
			return Project{Child: gen(depth - 1), Cols: []int{1, 0}}
		case 5:
			return Select{Child: gen(depth - 1), Query: ltQ(rng.Intn(2), int64(1+rng.Intn(4)))}
		default:
			// Joins change width; keep them at the leaves over scans
			// followed by a projection back to width 2.
			return Project{
				Child: Join{L: Scan{Name: "A"}, R: Scan{Name: "B"}, Spec: spec},
				Cols:  []int{0, 1},
			}
		}
	}

	for trial := 0; trial < 40; trial++ {
		plan := gen(1 + rng.Intn(3))
		want, err := Execute(plan, cat)
		if err != nil {
			t.Fatalf("trial %d: execute original: %v\nplan: %s", trial, err, Render(plan))
		}
		opt, err := Optimize(plan, cat)
		if err != nil {
			t.Fatalf("trial %d: optimize: %v\nplan: %s", trial, err, Render(plan))
		}
		got, err := Execute(opt, cat)
		if err != nil {
			t.Fatalf("trial %d: execute optimized: %v\noriginal: %s\noptimized: %s",
				trial, err, Render(plan), Render(opt))
		}
		if !got.EqualAsSet(want) {
			t.Fatalf("trial %d: optimization changed the result\noriginal:  %s\noptimized: %s",
				trial, Render(plan), Render(opt))
		}
	}
}

func TestWidthResolution(t *testing.T) {
	cat := optCatalog(t) // A, B both width 2
	spec := join.Spec{ACols: []int{0}, BCols: []int{0}}
	thetaSpec := join.Spec{ACols: []int{0}, BCols: []int{0}, Ops: []cells.Op{cells.GT}}
	cases := []struct {
		name string
		plan Node
		want int
	}{
		{"scan", Scan{Name: "A"}, 2},
		{"intersect", Intersect{L: Scan{Name: "A"}, R: Scan{Name: "B"}}, 2},
		{"difference", Difference{L: Scan{Name: "A"}, R: Scan{Name: "B"}}, 2},
		{"union", Union{L: Scan{Name: "A"}, R: Scan{Name: "B"}}, 2},
		{"dedup", Dedup{Scan{Name: "A"}}, 2},
		{"select", Select{Child: Scan{Name: "A"}, Query: ltQ(0, 1)}, 2},
		{"project", Project{Child: Scan{Name: "A"}, Cols: []int{0}}, 1},
		{"equi-join drops redundant column", Join{L: Scan{Name: "A"}, R: Scan{Name: "B"}, Spec: spec}, 3},
		{"theta-join keeps all columns", Join{L: Scan{Name: "A"}, R: Scan{Name: "B"}, Spec: thetaSpec}, 4},
		{"divide", Divide{L: Scan{Name: "A"}, R: Scan{Name: "B"}, AQuot: []int{0}, ADiv: []int{1}, BCols: []int{0}}, 1},
	}
	for _, c := range cases {
		got, err := width(c.plan, cat)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != c.want {
			t.Errorf("%s: width %d, want %d", c.name, got, c.want)
		}
	}
	if _, err := width(Scan{Name: "nope"}, cat); err == nil {
		t.Error("unknown scan width not rejected")
	}
}

func TestRenderAllNodeKinds(t *testing.T) {
	plan := Divide{
		L: Select{Child: Difference{L: Scan{Name: "A"}, R: Scan{Name: "B"}}, Query: ltQ(0, 1)},
		R: Project{Child: Join{L: Scan{Name: "A"}, R: Scan{Name: "B"},
			Spec: join.Spec{ACols: []int{0}, BCols: []int{0}}}, Cols: []int{0}},
		AQuot: []int{0}, ADiv: []int{0}, BCols: []int{0},
	}
	s := Render(plan)
	for _, frag := range []string{"divide", "select", "difference", "project", "join"} {
		if !strings.Contains(s, frag) {
			t.Errorf("render %q missing %q", s, frag)
		}
	}
}

func TestOptimizeErrors(t *testing.T) {
	if _, err := Optimize(Scan{Name: "missing"}, Catalog{}); err == nil {
		// Scans themselves don't resolve widths; only join pushdown
		// does. Force it through a join.
		plan := Select{
			Child: Join{L: Scan{Name: "missing"}, R: Scan{Name: "alsoMissing"},
				Spec: join.Spec{ACols: []int{0}, BCols: []int{0}}},
			Query: ltQ(0, 1),
		}
		if _, err := Optimize(plan, Catalog{}); err == nil {
			t.Error("unknown relation in join pushdown not reported")
		}
	}
}
