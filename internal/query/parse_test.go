package query

import (
	"fmt"
	"strings"
	"testing"

	"systolicdb/internal/baseline"
	"systolicdb/internal/cells"
	"systolicdb/internal/relation"
	"systolicdb/internal/workload"
)

func TestParseScan(t *testing.T) {
	n, err := Parse("scan(A)")
	if err != nil {
		t.Fatal(err)
	}
	if s, ok := n.(Scan); !ok || s.Name != "A" {
		t.Errorf("parsed %#v", n)
	}
}

func TestParseComposite(t *testing.T) {
	n, err := Parse("union( intersect(scan(A), scan(B)), dedup(scan(C)) )")
	if err != nil {
		t.Fatal(err)
	}
	rendered := Render(n)
	for _, frag := range []string{"union", "intersect", "scan(A)", "scan(B)", "dedup", "scan(C)"} {
		if !strings.Contains(rendered, frag) {
			t.Errorf("rendered %q missing %q", rendered, frag)
		}
	}
}

func TestParseProject(t *testing.T) {
	n, err := Parse("project(scan(A), 0, 2)")
	if err != nil {
		t.Fatal(err)
	}
	p, ok := n.(Project)
	if !ok || len(p.Cols) != 2 || p.Cols[0] != 0 || p.Cols[1] != 2 {
		t.Errorf("parsed %#v", n)
	}
}

func TestParseJoin(t *testing.T) {
	n, err := Parse("join(scan(A), scan(B), 0=1, 1=0)")
	if err != nil {
		t.Fatal(err)
	}
	j, ok := n.(Join)
	if !ok {
		t.Fatalf("parsed %#v", n)
	}
	if len(j.Spec.ACols) != 2 || j.Spec.ACols[0] != 0 || j.Spec.BCols[0] != 1 {
		t.Errorf("spec %+v", j.Spec)
	}
	if _, err := Parse("join(scan(A), scan(B), 0<1)"); err == nil {
		t.Error("join with θ operator not rejected (theta() required)")
	}
}

func TestParseTheta(t *testing.T) {
	n, err := Parse("theta(scan(A), scan(B), 0>=1)")
	if err != nil {
		t.Fatal(err)
	}
	j := n.(Join)
	if j.Spec.Ops[0] != cells.GE {
		t.Errorf("op %v, want >=", j.Spec.Ops[0])
	}
	for _, src := range []string{"0<1", "0<=1", "0>1", "0!=1", "0=1"} {
		if _, err := Parse("theta(scan(A), scan(B), " + src + ")"); err != nil {
			t.Errorf("theta %q rejected: %v", src, err)
		}
	}
}

func TestParseDivide(t *testing.T) {
	n, err := Parse("divide(scan(A), scan(B), quot=0+1, div=2, by=0)")
	if err != nil {
		t.Fatal(err)
	}
	d, ok := n.(Divide)
	if !ok {
		t.Fatalf("parsed %#v", n)
	}
	if len(d.AQuot) != 2 || d.AQuot[1] != 1 || len(d.ADiv) != 1 || d.ADiv[0] != 2 || d.BCols[0] != 0 {
		t.Errorf("groups %v %v %v", d.AQuot, d.ADiv, d.BCols)
	}
	if _, err := Parse("divide(scan(A), scan(B), quot=0)"); err == nil {
		t.Error("incomplete divide groups not rejected")
	}
	if _, err := Parse("divide(scan(A), scan(B), bogus=0)"); err == nil {
		t.Error("unknown group not rejected")
	}
}

func TestParseSelect(t *testing.T) {
	n, err := Parse("select(scan(A), 0<5, 1>=2)")
	if err != nil {
		t.Fatal(err)
	}
	s, ok := n.(Select)
	if !ok || len(s.Query) != 2 {
		t.Fatalf("parsed %#v", n)
	}
	if s.Query[0].Op != cells.LT || s.Query[0].Value != 5 {
		t.Errorf("predicate 0 = %+v", s.Query[0])
	}
	if s.Query[1].Op != cells.GE || s.Query[1].Col != 1 {
		t.Errorf("predicate 1 = %+v", s.Query[1])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"scan",
		"scan()",
		"scan(A",
		"scan(A) trailing",
		"bogus(scan(A))",
		"project(scan(A))",
		"select(scan(A))",
		"join(scan(A), scan(B))",
		"intersect(scan(A))",
		"select(scan(A), x<5)",
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q: not rejected", src)
		}
	}
}

func TestParsedPlanExecutes(t *testing.T) {
	a, b, err := workload.OverlapPair(90, 20, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	cat := Catalog{"A": a, "B": b}
	plan, err := Parse("union(intersect(scan(A), scan(B)), difference(scan(A), scan(B)))")
	if err != nil {
		t.Fatal(err)
	}
	got, err := Execute(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	// (A∩B) ∪ (A−B) = A.
	want, err := baseline.RemoveDuplicatesHash(a)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualAsSet(want) {
		t.Error("parsed plan produced wrong result")
	}
}

func TestParseNegativeConstant(t *testing.T) {
	n, err := Parse("select(scan(A), 0>-3)")
	if err != nil {
		t.Fatal(err)
	}
	s := n.(Select)
	if s.Query[0].Value != -3 {
		t.Errorf("value = %d, want -3", s.Query[0].Value)
	}
}

// TestParseBareSignOffset pins the number() offset fix: a bare sign with no
// digits must report the error at the sign, not one past it.
func TestParseBareSignOffset(t *testing.T) {
	// Offsets:      0123456789012345678
	_, err := Parse("select(scan(A), 0>-)")
	if err == nil {
		t.Fatal("bare '-' accepted as number")
	}
	if !strings.Contains(err.Error(), "offset 18") {
		t.Errorf("bare-sign error reports wrong offset (want 18, the '-'): %v", err)
	}
	_, err = Parse("select(scan(A), 0>+)")
	if err == nil {
		t.Fatal("bare '+' accepted as number")
	}
	if !strings.Contains(err.Error(), "offset 18") {
		t.Errorf("bare-sign error reports wrong offset (want 18, the '+'): %v", err)
	}
}

// TestParseRejectsNullSentinel pins the guard against constants equal to
// relation.Null: such a plan could never execute (relations cannot hold
// Null) and previously failed much later with a confusing error, or not at
// all.
func TestParseRejectsNullSentinel(t *testing.T) {
	src := fmt.Sprintf("select(scan(A), 0<%d)", relation.Null)
	_, err := Parse(src)
	if err == nil {
		t.Fatalf("constant %d (the reserved null element) accepted", relation.Null)
	}
	if !strings.Contains(err.Error(), "reserved null") {
		t.Errorf("null-constant error unclear: %v", err)
	}
	// Neighbouring values stay legal.
	if _, err := Parse(fmt.Sprintf("select(scan(A), 0<%d)", int64(relation.Null)+1)); err != nil {
		t.Errorf("null+1 rejected: %v", err)
	}
}
