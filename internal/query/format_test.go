package query

import (
	"testing"
)

// TestFormatRoundTrip checks Parse ∘ Format is the identity on parsed
// plans: the formatted text re-parses to a plan that renders and formats
// identically.
func TestFormatRoundTrip(t *testing.T) {
	cases := []string{
		"scan(A)",
		"intersect(scan(A), scan(B))",
		"difference(scan(A), scan(B))",
		"union(scan(emp), scan(mgr))",
		"dedup(scan(A))",
		"project(scan(A), 0)",
		"project(scan(A), 2, 0, 1)",
		"join(scan(A), scan(B), 0=0)",
		"join(scan(A), scan(B), 0=1, 1=0)",
		"theta(scan(A), scan(B), 0>1)",
		"theta(scan(A), scan(B), 0=0, 1<=1)",
		"divide(scan(A), scan(B), quot=0, div=1, by=0)",
		"divide(scan(A), scan(B), quot=0+1, div=2+3, by=0+1)",
		"select(scan(A), 0<5)",
		"select(scan(A), 0>=2, 1!=3)",
		"intersect(project(join(scan(A), scan(B), 1=0), 0, 2), dedup(scan(C)))",
	}
	for _, src := range cases {
		plan, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		text, err := Format(plan)
		if err != nil {
			t.Fatalf("Format(%q): %v", src, err)
		}
		back, err := Parse(text)
		if err != nil {
			t.Fatalf("Parse(Format(%q)) = Parse(%q): %v", src, text, err)
		}
		text2, err := Format(back)
		if err != nil {
			t.Fatalf("Format(Parse(%q)): %v", text, err)
		}
		if text != text2 {
			t.Fatalf("Format not a fixed point: %q -> %q -> %q", src, text, text2)
		}
		if Render(plan) != Render(back) {
			t.Fatalf("round trip changed plan: %q renders %q, reparse renders %q",
				src, Render(plan), Render(back))
		}
	}
}

func TestFormatRejectsUnformattable(t *testing.T) {
	if _, err := Format(Scan{Name: "bad name"}); err == nil {
		t.Fatal("Format accepted a scan name with a space")
	}
	if _, err := Format(Project{Child: Scan{Name: "A"}, Cols: nil}); err == nil {
		t.Fatal("Format accepted a project with no columns")
	}
	if _, err := Format(nil); err == nil {
		t.Fatal("Format accepted a nil plan")
	}
}
