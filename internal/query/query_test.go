package query

import (
	"strings"
	"testing"

	"systolicdb/internal/baseline"
	"systolicdb/internal/join"
	"systolicdb/internal/machine"
	"systolicdb/internal/workload"
)

func catalog(t *testing.T) Catalog {
	t.Helper()
	a, b, err := workload.OverlapPair(1, 20, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	c, err := workload.WithDuplicates(2, 15, 2, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	return Catalog{"A": a, "B": b, "C": c}
}

func TestExecuteScan(t *testing.T) {
	cat := catalog(t)
	r, err := Execute(Scan{"A"}, cat)
	if err != nil {
		t.Fatal(err)
	}
	if r != cat["A"] {
		t.Error("scan did not return the catalog relation")
	}
	if _, err := Execute(Scan{"missing"}, cat); err == nil {
		t.Error("unknown relation not rejected")
	}
}

func TestExecuteComposite(t *testing.T) {
	cat := catalog(t)
	// (A ∩ B) ∪ dedup(C)
	plan := Union{
		L: Intersect{Scan{"A"}, Scan{"B"}},
		R: Dedup{Scan{"C"}},
	}
	got, err := Execute(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	inter, err := baseline.IntersectionHash(cat["A"], cat["B"])
	if err != nil {
		t.Fatal(err)
	}
	want, err := baseline.UnionHash(inter, cat["C"])
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualAsSet(want) {
		t.Error("composite plan result differs from baseline composition")
	}
}

func TestExecuteAllOperators(t *testing.T) {
	cat := catalog(t)
	plans := []Node{
		Difference{Scan{"A"}, Scan{"B"}},
		Project{Child: Scan{"A"}, Cols: []int{0}},
		Join{L: Scan{"A"}, R: Scan{"B"}, Spec: join.Spec{ACols: []int{0}, BCols: []int{0}}},
	}
	for _, p := range plans {
		if _, err := Execute(p, cat); err != nil {
			t.Errorf("plan %s failed: %v", Render(p), err)
		}
	}
}

func TestExecuteDivide(t *testing.T) {
	a, b, err := workload.DivisionCase(3, 6, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	cat := Catalog{"A": a, "B": b}
	got, err := Execute(Divide{L: Scan{"A"}, R: Scan{"B"}, AQuot: []int{0}, ADiv: []int{1}, BCols: []int{0}}, cat)
	if err != nil {
		t.Fatal(err)
	}
	want, err := baseline.Divide(a, b, []int{0}, []int{1}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualAsSet(want) {
		t.Error("division plan differs from baseline")
	}
}

func TestCompileAndRunMatchesHostExecute(t *testing.T) {
	cat := catalog(t)
	plan := Project{
		Child: Join{
			L:    Intersect{Scan{"A"}, Scan{"B"}},
			R:    Scan{"C"},
			Spec: join.Spec{ACols: []int{0}, BCols: []int{0}},
		},
		Cols: []int{0, 1},
	}
	hostResult, err := Execute(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	tasks, out, err := Compile(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.Default1980(64)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Relations[out].EqualAsSet(hostResult) {
		t.Error("machine execution differs from host execution")
	}
	// One load per distinct base relation (A, B, C), even though A and B
	// could appear multiple times.
	loads := 0
	for _, task := range tasks {
		if task.Op == machine.OpLoad {
			loads++
		}
	}
	if loads != 3 {
		t.Errorf("%d load tasks, want 3", loads)
	}
}

func TestCompileMemoisesScans(t *testing.T) {
	cat := catalog(t)
	plan := Union{L: Scan{"A"}, R: Scan{"A"}}
	tasks, _, err := Compile(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	loads := 0
	for _, task := range tasks {
		if task.Op == machine.OpLoad {
			loads++
		}
	}
	if loads != 1 {
		t.Errorf("scan of same relation loaded %d times, want 1", loads)
	}
}

func TestCompileUnknownRelation(t *testing.T) {
	if _, _, err := Compile(Scan{"nope"}, Catalog{}); err == nil {
		t.Error("unknown relation not rejected at compile time")
	}
}

func TestRender(t *testing.T) {
	plan := Union{L: Intersect{Scan{"A"}, Scan{"B"}}, R: Dedup{Scan{"C"}}}
	s := Render(plan)
	for _, frag := range []string{"union", "intersect", "scan(A)", "scan(B)", "dedup", "scan(C)"} {
		if !strings.Contains(s, frag) {
			t.Errorf("rendered plan %q missing %q", s, frag)
		}
	}
	if Render(nil) != "<nil>" {
		t.Error("nil plan rendering wrong")
	}
}

func TestExecuteNil(t *testing.T) {
	if _, err := Execute(nil, Catalog{}); err == nil {
		t.Error("nil plan not rejected")
	}
}
