package query

import (
	"fmt"

	"systolicdb/internal/cells"
	"systolicdb/internal/join"
	"systolicdb/internal/lptdisk"
)

// Optimize rewrites a plan into an equivalent one that exploits the §9
// machine better. The catalog is needed to resolve schemas (e.g. operand
// widths for pushing a selection through a join). Rules applied, bottom-up
// until a fixed point:
//
//  1. select(select(e, P), Q)          -> select(e, P ∧ Q)
//  2. select(intersect/union/difference(l, r), P)
//     -> op(select(l, P), select(r, P))   [same-schema set operations]
//  3. select(project(e, cols), P)      -> project(select(e, P'), cols)
//     with P' rewritten through the column map
//  4. select(join(l, r), P)            -> join(select(l, Pl), select(r, Pr))
//     with P split column-by-column between the inputs: the join result
//     is l's columns unchanged followed by r's kept columns (equi-joins
//     drop r's join columns), so every single-column predicate maps to
//     exactly one input
//  5. dedup(dedup(e))                  -> dedup(e)
//  6. dedup(project(e, cols))          -> project(e, cols)   [project dedups]
//  7. dedup(union(l, r))               -> union(l, r)        [union dedups]
//  8. dedup(intersect(l, r))           -> intersect(dedup(l), r)
//     [membership testing preserves A's duplicates; dedup A first instead]
//  9. project(project(e, c1), c2)      -> project(e, c1∘c2)
//  10. select(dedup(e), P)              -> dedup(select(e, P))
//     [filtering commutes with duplicate removal]
//
// The goal of the selection rules is to sink every Select onto a Scan, at
// which point Compile turns it into logic-per-track disk filtering ("some
// simple queries never have to be processed outside the disks"). Every
// rewrite preserves results; TestOptimizePreservesResults checks the whole
// rule set against unoptimized execution on randomized plans.
func Optimize(n Node, cat Catalog) (Node, error) {
	for i := 0; i < 32; i++ { // fixed-point iteration with a safety bound
		rewritten, changed, err := rewrite(n, cat)
		if err != nil {
			return nil, err
		}
		n = rewritten
		if !changed {
			return n, nil
		}
	}
	return n, nil
}

// width returns the output width of a plan node.
func width(n Node, cat Catalog) (int, error) {
	switch op := n.(type) {
	case Scan:
		r, ok := cat[op.Name]
		if !ok {
			return 0, fmt.Errorf("query: unknown relation %q", op.Name)
		}
		return r.Width(), nil
	case Intersect:
		return width(op.L, cat)
	case Difference:
		return width(op.L, cat)
	case Union:
		return width(op.L, cat)
	case Dedup:
		return width(op.Child, cat)
	case Select:
		return width(op.Child, cat)
	case Project:
		return len(op.Cols), nil
	case Join:
		lw, err := width(op.L, cat)
		if err != nil {
			return 0, err
		}
		rw, err := width(op.R, cat)
		if err != nil {
			return 0, err
		}
		return lw + len(joinBKeep(op.Spec, rw)), nil
	case Divide:
		return len(op.AQuot), nil
	}
	return 0, fmt.Errorf("query: unknown node %T", n)
}

// joinBKeep mirrors join.Materialize's output layout: the join result is
// L's columns followed by the R input columns listed here, in order
// (equi-joins drop R's join columns; θ-joins keep everything).
func joinBKeep(spec join.Spec, rw int) []int {
	equi := true
	for _, o := range spec.Ops {
		if o != cells.EQ {
			equi = false
		}
	}
	drop := make(map[int]bool)
	if equi {
		for _, c := range spec.BCols {
			drop[c] = true
		}
	}
	keep := make([]int, 0, rw)
	for i := 0; i < rw; i++ {
		if !drop[i] {
			keep = append(keep, i)
		}
	}
	return keep
}

// rewrite applies one bottom-up pass of the rules.
func rewrite(n Node, cat Catalog) (Node, bool, error) {
	switch op := n.(type) {
	case Scan:
		return op, false, nil

	case Intersect:
		l, cl, err := rewrite(op.L, cat)
		if err != nil {
			return nil, false, err
		}
		r, cr, err := rewrite(op.R, cat)
		if err != nil {
			return nil, false, err
		}
		return Intersect{L: l, R: r}, cl || cr, nil

	case Difference:
		l, cl, err := rewrite(op.L, cat)
		if err != nil {
			return nil, false, err
		}
		r, cr, err := rewrite(op.R, cat)
		if err != nil {
			return nil, false, err
		}
		return Difference{L: l, R: r}, cl || cr, nil

	case Union:
		l, cl, err := rewrite(op.L, cat)
		if err != nil {
			return nil, false, err
		}
		r, cr, err := rewrite(op.R, cat)
		if err != nil {
			return nil, false, err
		}
		return Union{L: l, R: r}, cl || cr, nil

	case Join:
		l, cl, err := rewrite(op.L, cat)
		if err != nil {
			return nil, false, err
		}
		r, cr, err := rewrite(op.R, cat)
		if err != nil {
			return nil, false, err
		}
		return Join{L: l, R: r, Spec: op.Spec}, cl || cr, nil

	case Divide:
		l, cl, err := rewrite(op.L, cat)
		if err != nil {
			return nil, false, err
		}
		r, cr, err := rewrite(op.R, cat)
		if err != nil {
			return nil, false, err
		}
		return Divide{L: l, R: r, AQuot: op.AQuot, ADiv: op.ADiv, BCols: op.BCols}, cl || cr, nil

	case Dedup:
		child, changed, err := rewrite(op.Child, cat)
		if err != nil {
			return nil, false, err
		}
		switch inner := child.(type) {
		case Dedup: // rule 5
			return inner, true, nil
		case Project: // rule 6
			return inner, true, nil
		case Union: // rule 7
			return inner, true, nil
		case Intersect: // rule 8
			return Intersect{L: Dedup{Child: inner.L}, R: inner.R}, true, nil
		}
		return Dedup{Child: child}, changed, nil

	case Project:
		child, changed, err := rewrite(op.Child, cat)
		if err != nil {
			return nil, false, err
		}
		if inner, ok := child.(Project); ok { // rule 9
			composed := make([]int, len(op.Cols))
			valid := true
			for i, c := range op.Cols {
				if c < 0 || c >= len(inner.Cols) {
					valid = false
					break
				}
				composed[i] = inner.Cols[c]
			}
			if valid {
				return Project{Child: inner.Child, Cols: composed}, true, nil
			}
		}
		return Project{Child: child, Cols: op.Cols}, changed, nil

	case Select:
		child, changed, err := rewrite(op.Child, cat)
		if err != nil {
			return nil, false, err
		}
		switch inner := child.(type) {
		case Select: // rule 1
			merged := append(append(lptdisk.Query{}, inner.Query...), op.Query...)
			return Select{Child: inner.Child, Query: merged}, true, nil
		case Intersect: // rule 2
			return Intersect{
				L: Select{Child: inner.L, Query: op.Query},
				R: Select{Child: inner.R, Query: op.Query},
			}, true, nil
		case Union:
			return Union{
				L: Select{Child: inner.L, Query: op.Query},
				R: Select{Child: inner.R, Query: op.Query},
			}, true, nil
		case Difference:
			return Difference{
				L: Select{Child: inner.L, Query: op.Query},
				R: Select{Child: inner.R, Query: op.Query},
			}, true, nil
		case Project: // rule 3
			mapped := make(lptdisk.Query, len(op.Query))
			valid := true
			for i, p := range op.Query {
				if p.Col < 0 || p.Col >= len(inner.Cols) {
					valid = false
					break
				}
				mapped[i] = lptdisk.Predicate{Col: inner.Cols[p.Col], Op: p.Op, Value: p.Value}
			}
			if valid {
				return Project{
					Child: Select{Child: inner.Child, Query: mapped},
					Cols:  inner.Cols,
				}, true, nil
			}
		case Dedup: // rule 10
			return Dedup{Child: Select{Child: inner.Child, Query: op.Query}}, true, nil
		case Join: // rule 4: split predicates between the join's inputs
			lw, err := width(inner.L, cat)
			if err != nil {
				return nil, false, err
			}
			rw, err := width(inner.R, cat)
			if err != nil {
				return nil, false, err
			}
			bKeep := joinBKeep(inner.Spec, rw)
			var lq, rq lptdisk.Query
			valid := len(op.Query) > 0
			for _, p := range op.Query {
				switch {
				case p.Col >= 0 && p.Col < lw:
					lq = append(lq, p)
				case p.Col >= lw && p.Col < lw+len(bKeep):
					// Output column lw+i is R's input column bKeep[i],
					// value-identical in every emitted row.
					rq = append(rq, lptdisk.Predicate{Col: bKeep[p.Col-lw], Op: p.Op, Value: p.Value})
				default:
					valid = false // out-of-range predicate: keep the Select so it still errors at execution
				}
				if !valid {
					break
				}
			}
			if valid {
				l, r := inner.L, inner.R
				if len(lq) > 0 {
					l = Select{Child: l, Query: lq}
				}
				if len(rq) > 0 {
					r = Select{Child: r, Query: rq}
				}
				return Join{L: l, R: r, Spec: inner.Spec}, true, nil
			}
		}
		return Select{Child: child, Query: op.Query}, changed, nil
	}
	return nil, false, fmt.Errorf("query: unknown node %T", n)
}
