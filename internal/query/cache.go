package query

import (
	"container/list"
	"fmt"
	"sync"

	"systolicdb/internal/machine"
	"systolicdb/internal/obs"
)

// PlanCache is an LRU of prepared plans keyed by canonical plan text
// (Render of the parsed tree) + backend + optimize flag, each entry
// stamped with the catalog version it was built against. A hit skips
// Parse and Optimize, and — once the entry has been run on the machine
// once — Compile as well (the lowered task list is memoized lazily).
//
// Invalidation is by version comparison at lookup time, not by eager
// sweep: the catalog bumps a monotonic counter on every PUT/DELETE, and a
// hit whose stored version differs is evicted and counted as an
// invalidation. That makes a PUT O(1) regardless of cache size while
// still guaranteeing no query ever runs a plan prepared against a
// catalog it can no longer see (prepared plans capture relation
// pointers; see CachedPlan.Tasks).
//
// A raw-text alias map fronts the canonical index so an exactly-repeated
// query string skips Parse too; aliases are dropped with their entry.
type PlanCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recent; values are *planEntry
	entries map[string]*list.Element
	aliases map[string]string // raw key -> canonical key

	hits, misses, invalidations, evictions *obs.Counter
	size                                   *obs.Gauge
}

// planEntry is one cached prepared plan.
type planEntry struct {
	key       string
	aliasKeys []string
	version   uint64
	plan      Node   // optimized (or raw, when the entry was built with optimize off)
	canonical string // Render of the parsed tree (pre-optimization)
	rendered  string // Render of plan
	compiled  bool
	tasks     []machine.Task
	output    string
}

// CachedPlan is the caller's view of a cache hit (or a fresh insert): the
// prepared plan plus the lazily-compiled machine transaction.
type CachedPlan struct {
	Plan      Node
	Canonical string // canonical (pre-optimization) plan text
	Rendered  string // prepared plan text
	cache     *PlanCache
	entry     *planEntry
}

// NewPlanCache builds a cache holding at most capacity prepared plans
// (capacity <= 0 disables caching: every lookup misses, inserts are
// dropped). Counters and the size gauge land in reg, or obs.Default when
// nil.
func NewPlanCache(capacity int, reg *obs.Registry) *PlanCache {
	if reg == nil {
		reg = obs.Default
	}
	return &PlanCache{
		cap:           capacity,
		ll:            list.New(),
		entries:       make(map[string]*list.Element),
		aliases:       make(map[string]string),
		hits:          reg.Counter("query_plan_cache_hits_total", nil),
		misses:        reg.Counter("query_plan_cache_misses_total", nil),
		invalidations: reg.Counter("query_plan_cache_invalidations_total", nil),
		evictions:     reg.Counter("query_plan_cache_evictions_total", nil),
		size:          reg.Gauge("query_plan_cache_size", nil),
	}
}

func cacheKey(canonical string, backend machine.Backend, optimize bool) string {
	return fmt.Sprintf("%d|%t|%s", backend, optimize, canonical)
}

func rawKey(raw string, backend machine.Backend, optimize bool) string {
	return fmt.Sprintf("%d|%t|raw|%s", backend, optimize, raw)
}

// Lookup resolves a raw (unparsed) query text. A hit means the exact
// string was cached for this backend/optimize mode at this catalog
// version; a version mismatch evicts the entry and reports a miss (and
// an invalidation).
func (c *PlanCache) Lookup(raw string, backend machine.Backend, optimize bool, version uint64) (*CachedPlan, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	key, ok := c.aliases[rawKey(raw, backend, optimize)]
	if !ok {
		// Not counted as a miss yet: the caller retries via
		// LookupCanonical after parsing, which settles hit vs miss.
		return nil, false
	}
	return c.lookupLocked(key, version)
}

// LookupCanonical resolves a parsed plan's canonical text, learning the
// raw string as an alias on a hit so the next identical request skips
// Parse as well.
func (c *PlanCache) LookupCanonical(raw, canonical string, backend machine.Backend, optimize bool, version uint64) (*CachedPlan, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	cp, ok := c.lookupLocked(cacheKey(canonical, backend, optimize), version)
	if ok {
		c.aliasLocked(cp.entry, rawKey(raw, backend, optimize))
	}
	return cp, ok
}

func (c *PlanCache) lookupLocked(key string, version uint64) (*CachedPlan, bool) {
	el, ok := c.entries[key]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	e := el.Value.(*planEntry)
	if e.version != version {
		c.removeLocked(el)
		c.invalidations.Inc()
		c.misses.Inc()
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Inc()
	return &CachedPlan{Plan: e.plan, Canonical: e.canonical, Rendered: e.rendered, cache: c, entry: e}, true
}

// Insert records a freshly prepared plan and returns its handle. The
// entry replaces any existing one under the same key (e.g. one built at
// a stale version).
func (c *PlanCache) Insert(raw, canonical string, backend machine.Backend, optimize bool, version uint64, plan Node) *CachedPlan {
	cp := &CachedPlan{Plan: plan, Canonical: canonical, Rendered: Render(plan)}
	if c == nil || c.cap <= 0 {
		return cp
	}
	e := &planEntry{
		key:       cacheKey(canonical, backend, optimize),
		version:   version,
		plan:      plan,
		canonical: canonical,
		rendered:  cp.Rendered,
	}
	cp.cache, cp.entry = c, e
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.entries[e.key]; ok {
		c.removeLocked(old)
	}
	c.entries[e.key] = c.ll.PushFront(e)
	c.aliasLocked(e, rawKey(raw, backend, optimize))
	for c.ll.Len() > c.cap {
		c.removeLocked(c.ll.Back())
		c.evictions.Inc()
	}
	c.size.Set(float64(c.ll.Len()))
	return cp
}

// aliasLocked points a raw-text key at an entry, bounding the per-entry
// alias list so adversarially varied whitespace cannot grow the map
// without bound.
func (c *PlanCache) aliasLocked(e *planEntry, rk string) {
	if e == nil || len(e.aliasKeys) >= 8 {
		return
	}
	if cur, ok := c.aliases[rk]; ok && cur == e.key {
		return
	}
	c.aliases[rk] = e.key
	e.aliasKeys = append(e.aliasKeys, rk)
}

func (c *PlanCache) removeLocked(el *list.Element) {
	e := el.Value.(*planEntry)
	c.ll.Remove(el)
	delete(c.entries, e.key)
	for _, rk := range e.aliasKeys {
		if c.aliases[rk] == e.key {
			delete(c.aliases, rk)
		}
	}
	c.size.Set(float64(c.ll.Len()))
}

// Tasks returns the machine transaction for the cached plan, compiling
// it on first use and memoizing the result in the entry. The returned
// slice is a fresh copy each call (machine.Run receives its own tasks).
// Compilation captures *relation.Relation pointers out of cat, which is
// safe precisely because the entry is version-stamped: equal versions
// imply the catalog maps the same names to the same (immutable) relation
// values.
func (cp *CachedPlan) Tasks(cat Catalog, o *Options) ([]machine.Task, string, error) {
	if cp.cache == nil || cp.entry == nil {
		return CompileOpts(cp.Plan, cat, o)
	}
	c, e := cp.cache, cp.entry
	c.mu.Lock()
	if e.compiled {
		tasks := append([]machine.Task(nil), e.tasks...)
		out := e.output
		c.mu.Unlock()
		return tasks, out, nil
	}
	c.mu.Unlock()
	tasks, out, err := CompileOpts(cp.Plan, cat, o) // compile outside the lock
	if err != nil {
		return nil, "", err
	}
	c.mu.Lock()
	if !e.compiled {
		e.compiled = true
		e.tasks = append([]machine.Task(nil), tasks...)
		e.output = out
	}
	c.mu.Unlock()
	return tasks, out, nil
}

// CacheStats is a point-in-time snapshot of cache effectiveness, shaped
// for /healthz.
type CacheStats struct {
	Capacity      int   `json:"capacity"`
	Size          int   `json:"size"`
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Invalidations int64 `json:"invalidations"`
	Evictions     int64 `json:"evictions"`
}

// Stats snapshots the cache counters; safe on a nil cache.
func (c *PlanCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Capacity:      c.cap,
		Size:          c.ll.Len(),
		Hits:          c.hits.Value(),
		Misses:        c.misses.Value(),
		Invalidations: c.invalidations.Value(),
		Evictions:     c.evictions.Value(),
	}
}

// ScanNames returns the base-relation names a plan reads, in first-visit
// order. The server uses it to refuse caching plans that touch hidden
// (temp) relations, whose lifecycles are not covered by the catalog
// version counter.
func ScanNames(n Node) []string {
	var names []string
	seen := make(map[string]bool)
	var walk func(Node)
	walk = func(n Node) {
		if n == nil {
			return
		}
		if s, ok := n.(Scan); ok {
			if !seen[s.Name] {
				seen[s.Name] = true
				names = append(names, s.Name)
			}
			return
		}
		for _, k := range n.children() {
			walk(k)
		}
	}
	walk(n)
	return names
}
