package query

import (
	"testing"

	"systolicdb/internal/cells"
	"systolicdb/internal/lptdisk"
	"systolicdb/internal/machine"
	"systolicdb/internal/workload"
)

func TestSelectHostExecution(t *testing.T) {
	r, err := workload.Uniform(50, 40, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	cat := Catalog{"R": r}
	plan := Select{Child: Scan{Name: "R"}, Query: lptdisk.Query{{Col: 0, Op: cells.LT, Value: 5}}}
	got, err := Execute(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < r.Cardinality(); i++ {
		if r.Tuple(i)[0] < 5 {
			want++
		}
	}
	if got.Cardinality() != want {
		t.Errorf("selected %d, want %d", got.Cardinality(), want)
	}
	for i := 0; i < got.Cardinality(); i++ {
		if got.Tuple(i)[0] >= 5 {
			t.Errorf("tuple %v violates predicate", got.Tuple(i))
		}
	}
}

func TestSelectOverNonScanHostOnly(t *testing.T) {
	r, err := workload.Uniform(51, 20, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	cat := Catalog{"R": r}
	plan := Select{
		Child: Dedup{Scan{Name: "R"}},
		Query: lptdisk.Query{{Col: 0, Op: cells.GE, Value: 2}},
	}
	if _, err := Execute(plan, cat); err != nil {
		t.Errorf("host execution of select over non-scan failed: %v", err)
	}
	if _, _, err := Compile(plan, cat); err == nil {
		t.Error("machine compilation of select over non-scan not rejected (selection happens at the disk)")
	}
}

func TestSelectCompilesToSingleLoad(t *testing.T) {
	r, err := workload.Uniform(52, 30, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	cat := Catalog{"R": r}
	plan := Select{Child: Scan{Name: "R"}, Query: lptdisk.Query{{Col: 1, Op: cells.EQ, Value: 3}}}
	tasks, out, err := Compile(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 1 || tasks[0].Op != machine.OpLoad || tasks[0].Select == nil {
		t.Fatalf("compiled tasks = %+v, want one selecting load", tasks)
	}
	m, err := machine.Default1980(64)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	host, err := Execute(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Relations[out].EqualAsMultiset(host) {
		t.Error("machine selection differs from host selection")
	}
}

func TestSelectFeedsDownstreamOperators(t *testing.T) {
	a, err := workload.Uniform(53, 30, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := workload.Uniform(54, 30, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	cat := Catalog{"A": a, "B": b}
	plan := Intersect{
		L: Select{Child: Scan{Name: "A"}, Query: lptdisk.Query{{Col: 0, Op: cells.LT, Value: 4}}},
		R: Scan{Name: "B"},
	}
	host, err := Execute(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	tasks, out, err := Compile(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.Default1980(64)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Relations[out].EqualAsSet(host) {
		t.Error("select-into-intersect pipeline differs between machine and host")
	}
}

func TestSelectInvalidColumn(t *testing.T) {
	r, err := workload.Uniform(55, 5, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	cat := Catalog{"R": r}
	plan := Select{Child: Scan{Name: "R"}, Query: lptdisk.Query{{Col: 9, Op: cells.EQ, Value: 1}}}
	if _, err := Execute(plan, cat); err == nil {
		t.Error("out-of-range predicate column not rejected by host executor")
	}
}
