package query

import (
	"fmt"
	"strings"

	"systolicdb/internal/cells"
)

// Format renders a plan in the exact textual algebra Parse accepts, so a
// plan can round-trip through text: Parse(Format(n)) rebuilds n. This is
// what lets the cluster coordinator ship rewritten sub-plans to shard
// daemons over the wire — Render is for human logs (it elides join specs),
// Format is for machines.
func Format(n Node) (string, error) {
	var sb strings.Builder
	if err := format(&sb, n); err != nil {
		return "", err
	}
	return sb.String(), nil
}

func format(sb *strings.Builder, n Node) error {
	switch op := n.(type) {
	case Scan:
		if !validScanName(op.Name) {
			return fmt.Errorf("query: relation name %q cannot be formatted as plan text", op.Name)
		}
		fmt.Fprintf(sb, "scan(%s)", op.Name)
		return nil
	case Intersect:
		return formatPair(sb, "intersect", op.L, op.R, "")
	case Difference:
		return formatPair(sb, "difference", op.L, op.R, "")
	case Union:
		return formatPair(sb, "union", op.L, op.R, "")
	case Dedup:
		sb.WriteString("dedup(")
		if err := format(sb, op.Child); err != nil {
			return err
		}
		sb.WriteString(")")
		return nil
	case Project:
		if len(op.Cols) == 0 {
			return fmt.Errorf("query: project with no columns cannot be formatted")
		}
		sb.WriteString("project(")
		if err := format(sb, op.Child); err != nil {
			return err
		}
		for _, c := range op.Cols {
			fmt.Fprintf(sb, ", %d", c)
		}
		sb.WriteString(")")
		return nil
	case Join:
		name := "join"
		for _, o := range op.Spec.Ops {
			if o != cells.EQ {
				name = "theta"
			}
		}
		if len(op.Spec.ACols) == 0 || len(op.Spec.ACols) != len(op.Spec.BCols) {
			return fmt.Errorf("query: join spec with %d/%d column pairs cannot be formatted",
				len(op.Spec.ACols), len(op.Spec.BCols))
		}
		var spec strings.Builder
		for k := range op.Spec.ACols {
			o := cells.EQ
			if op.Spec.Ops != nil {
				o = op.Spec.Ops[k]
			}
			fmt.Fprintf(&spec, ", %d%s%d", op.Spec.ACols[k], o, op.Spec.BCols[k])
		}
		return formatPair(sb, name, op.L, op.R, spec.String())
	case Divide:
		if len(op.AQuot) == 0 || len(op.ADiv) == 0 || len(op.BCols) == 0 {
			return fmt.Errorf("query: divide without quot/div/by groups cannot be formatted")
		}
		spec := fmt.Sprintf(", quot=%s, div=%s, by=%s",
			joinInts(op.AQuot), joinInts(op.ADiv), joinInts(op.BCols))
		return formatPair(sb, "divide", op.L, op.R, spec)
	case Select:
		if len(op.Query) == 0 {
			return fmt.Errorf("query: select with no predicates cannot be formatted")
		}
		sb.WriteString("select(")
		if err := format(sb, op.Child); err != nil {
			return err
		}
		for _, p := range op.Query {
			fmt.Fprintf(sb, ", %d%s%d", p.Col, p.Op, int64(p.Value))
		}
		sb.WriteString(")")
		return nil
	}
	return fmt.Errorf("query: unsupported plan node %T", n)
}

func formatPair(sb *strings.Builder, name string, l, r Node, spec string) error {
	sb.WriteString(name)
	sb.WriteString("(")
	if err := format(sb, l); err != nil {
		return err
	}
	sb.WriteString(", ")
	if err := format(sb, r); err != nil {
		return err
	}
	sb.WriteString(spec)
	sb.WriteString(")")
	return nil
}

// joinInts renders a column group as the parser's "+"-separated list.
func joinInts(cols []int) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = fmt.Sprintf("%d", c)
	}
	return strings.Join(parts, "+")
}

// validScanName reports whether the parser's ident production accepts name.
func validScanName(name string) bool {
	if name == "" {
		return false
	}
	for _, c := range name {
		if !(c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9') {
			return false
		}
	}
	return true
}
