package query

import (
	"context"
	"strings"
	"sync"
	"testing"

	"systolicdb/internal/obs"
	"systolicdb/internal/workload"
)

// optionsCatalog builds a small two-relation catalog for option tests.
func optionsCatalog(t *testing.T) Catalog {
	t.Helper()
	a, b, err := workload.JoinPair(7, 12, 12, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	return Catalog{"A": a, "B": b}
}

// TestExecutePrivateRegistry checks that ExecuteCtx with Options.Metrics
// records spans only into the caller's registry, leaving obs.Default
// untouched — the isolation the network server depends on.
func TestExecutePrivateRegistry(t *testing.T) {
	cat := optionsCatalog(t)
	plan, err := Parse("intersect(scan(A), scan(B))")
	if err != nil {
		t.Fatal(err)
	}
	before := obs.Default.Counter("query_node_pulses_total", obs.Labels{"node": "intersect", "backend": "pulse"}).Value()

	reg := obs.NewRegistry()
	if _, err := ExecuteCtx(context.Background(), plan, cat, &Options{Metrics: reg}); err != nil {
		t.Fatal(err)
	}

	if got := obs.Default.Counter("query_node_pulses_total", obs.Labels{"node": "intersect", "backend": "pulse"}).Value(); got != before {
		t.Errorf("obs.Default pulses changed %d -> %d despite private registry", before, got)
	}
	if reg.Counter("query_node_pulses_total", obs.Labels{"node": "intersect", "backend": "pulse"}).Value() == 0 {
		t.Error("private registry recorded no intersect pulses")
	}
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `query_node_host_seconds_count{backend="pulse",node="scan"}`) {
		t.Errorf("private registry missing scan span:\n%s", sb.String())
	}
}

// TestCompileOptsPrivateRegistry checks the compile-side counters obey
// Options.Metrics too.
func TestCompileOptsPrivateRegistry(t *testing.T) {
	cat := optionsCatalog(t)
	plan, err := Parse("union(scan(A), scan(B))")
	if err != nil {
		t.Fatal(err)
	}
	before := obs.Default.Counter("query_compile_total", nil).Value()
	reg := obs.NewRegistry()
	tasks, _, err := CompileOpts(plan, cat, &Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if got := obs.Default.Counter("query_compile_total", nil).Value(); got != before {
		t.Errorf("obs.Default compile counter changed %d -> %d", before, got)
	}
	if got := reg.Counter("query_compile_tasks_total", nil).Value(); got != int64(len(tasks)) {
		t.Errorf("private registry counted %d tasks, compiled %d", got, len(tasks))
	}
}

// TestExecuteStats checks plan-wide pulse totals accumulate into
// Options.Stats and match the registry's own account.
func TestExecuteStats(t *testing.T) {
	cat := optionsCatalog(t)
	plan, err := Parse("project(join(scan(A), scan(B), 0=0), 0)")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	var st ExecStats
	if _, err := ExecuteCtx(context.Background(), plan, cat, &Options{Metrics: reg, Stats: &st}); err != nil {
		t.Fatal(err)
	}
	if st.Pulses <= 0 {
		t.Fatalf("plan-wide pulse total %d, want > 0", st.Pulses)
	}
	sum := reg.Counter("query_node_pulses_total", obs.Labels{"node": "join", "backend": "pulse"}).Value() +
		reg.Counter("query_node_pulses_total", obs.Labels{"node": "project", "backend": "pulse"}).Value()
	if int64(st.Pulses) != sum {
		t.Errorf("Stats.Pulses = %d, registry per-node sum = %d", st.Pulses, sum)
	}
}

// TestExecuteCtxCancel checks a cancelled context stops the plan between
// operators with an error that wraps context.Canceled.
func TestExecuteCtxCancel(t *testing.T) {
	cat := optionsCatalog(t)
	plan, err := Parse("join(scan(A), scan(B), 0=0)")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = ExecuteCtx(ctx, plan, cat, &Options{Metrics: obs.NewRegistry()})
	if err == nil {
		t.Fatal("cancelled context did not stop execution")
	}
	if !strings.Contains(err.Error(), "cancelled") {
		t.Errorf("cancellation error = %v", err)
	}
	if ctx.Err() == nil || !strings.Contains(err.Error(), ctx.Err().Error()) {
		t.Errorf("error %v does not wrap %v", err, ctx.Err())
	}
}

// TestConcurrentExecuteSharedCatalog is the read-only-catalog contract
// test: many goroutines run different plans against one shared Catalog
// value (and one shared private registry) at once. Run with -race this
// fails if Execute ever writes to the catalog or a catalog relation.
func TestConcurrentExecuteSharedCatalog(t *testing.T) {
	cat := optionsCatalog(t)
	plans := []string{
		"intersect(scan(A), scan(B))",
		"difference(scan(A), scan(B))",
		"union(scan(A), scan(B))",
		"dedup(scan(A))",
		"project(scan(A), 0)",
		"join(scan(A), scan(B), 0=0)",
		"select(scan(A), 0>=0)",
	}
	reg := obs.NewRegistry()
	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers*len(plans))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i, src := range plans {
				plan, err := Parse(src)
				if err != nil {
					errs <- err
					return
				}
				// Half the workers also exercise the optimizer and
				// compiler, which read the same shared catalog.
				if w%2 == 0 {
					if plan, err = Optimize(plan, cat); err != nil {
						errs <- err
						return
					}
					if _, _, err := CompileOpts(plan, cat, &Options{Metrics: reg}); err != nil {
						errs <- err
						return
					}
				}
				res, err := ExecuteCtx(context.Background(), plan, cat, &Options{Metrics: reg})
				if err != nil {
					errs <- err
					return
				}
				if res == nil {
					errs <- errHelper(i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

type errHelper int

func (e errHelper) Error() string { return "nil result from plan" }
