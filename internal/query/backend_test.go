package query

import (
	"context"
	"testing"

	"systolicdb/internal/machine"
	"systolicdb/internal/obs"
	"systolicdb/internal/workload"
)

// TestOptionsBackendSelection pins that Options.Backend selects the
// execution engine: both backends produce the same relation for the same
// plan, each reports cost in its own unit (pulses vs word ops), and the
// per-node metrics carry the backend label.
func TestOptionsBackendSelection(t *testing.T) {
	cat := optionsCatalog(t)
	for _, src := range []string{
		"intersect(scan(A), scan(B))",
		"difference(scan(A), scan(B))",
		"union(scan(A), scan(B))",
		"dedup(scan(A))",
		"project(join(scan(A), scan(B), 0=0), 0)",
		"theta(scan(A), scan(B), 0>0)",
	} {
		plan, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}

		var pulseSt ExecStats
		pulseRel, err := ExecuteCtx(context.Background(), plan, cat,
			&Options{Metrics: obs.NewRegistry(), Stats: &pulseSt})
		if err != nil {
			t.Fatalf("%s pulse: %v", src, err)
		}

		reg := obs.NewRegistry()
		var bitSt ExecStats
		bitRel, err := ExecuteCtx(context.Background(), plan, cat,
			&Options{Metrics: reg, Stats: &bitSt, Backend: machine.BackendBitset})
		if err != nil {
			t.Fatalf("%s bitset: %v", src, err)
		}

		if !pulseRel.EqualAsMultiset(bitRel) {
			t.Errorf("%s: backends disagree:\npulse:\n%s\nbitset:\n%s", src, pulseRel, bitRel)
		}
		if pulseSt.Pulses == 0 || pulseSt.WordOps != 0 {
			t.Errorf("%s pulse stats: pulses=%d wordOps=%d, want pulses>0 wordOps=0",
				src, pulseSt.Pulses, pulseSt.WordOps)
		}
		if bitSt.WordOps == 0 || bitSt.Pulses != 0 {
			t.Errorf("%s bitset stats: pulses=%d wordOps=%d, want wordOps>0 pulses=0",
				src, bitSt.Pulses, bitSt.WordOps)
		}
		if reg.Counter("query_node_word_ops_total",
			obs.Labels{"node": "scan", "backend": "bitset"}).Value() != 0 {
			t.Errorf("%s: scan charged word ops", src)
		}
		pulseSt, bitSt = ExecStats{}, ExecStats{}
	}
}

// TestBitsetBackendMetricLabels pins the per-backend metric shape: bitset
// runs emit query_node_word_ops_total under backend="bitset" and no pulse
// series for the same node.
func TestBitsetBackendMetricLabels(t *testing.T) {
	cat := optionsCatalog(t)
	plan, err := Parse("intersect(scan(A), scan(B))")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	if _, err := ExecuteCtx(context.Background(), plan, cat,
		&Options{Metrics: reg, Backend: machine.BackendBitset}); err != nil {
		t.Fatal(err)
	}
	if reg.Counter("query_node_word_ops_total",
		obs.Labels{"node": "intersect", "backend": "bitset"}).Value() == 0 {
		t.Error("no word ops recorded under backend=bitset")
	}
	if reg.Counter("query_node_pulses_total",
		obs.Labels{"node": "intersect", "backend": "bitset"}).Value() != 0 {
		t.Error("bitset run recorded pulse series")
	}
}

// TestDivisionBackendEquivalence runs the division plan node on both
// backends (it reduces through different distinct-x machinery, so it gets
// its own pin).
func TestDivisionBackendEquivalence(t *testing.T) {
	a, b, err := workload.DivisionCase(11, 16, 4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	cat := Catalog{"A": a, "B": b}
	plan, err := Parse("divide(scan(A), scan(B), quot=0, div=1, by=0)")
	if err != nil {
		t.Fatal(err)
	}
	pulseRel, err := ExecuteCtx(context.Background(), plan, cat, &Options{Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	bitRel, err := ExecuteCtx(context.Background(), plan, cat,
		&Options{Metrics: obs.NewRegistry(), Backend: machine.BackendBitset})
	if err != nil {
		t.Fatal(err)
	}
	if !pulseRel.EqualAsMultiset(bitRel) {
		t.Errorf("division backends disagree:\npulse:\n%s\nbitset:\n%s", pulseRel, bitRel)
	}
}
