// Package query provides a small relational-algebra plan representation,
// a host executor that evaluates plans directly on the systolic array
// drivers, and a compiler that lowers plans onto the §9 machine as
// transactions (lists of machine.Task).
//
// The paper's §9 scenario — "to process all of the operations required in a
// single transaction or a set of transactions, an integrated system
// containing several systolic arrays is needed" — is exactly what
// Compile + machine.Run model; the host executor is the single-array,
// operation-at-a-time view used everywhere else in the repository.
package query

import (
	"context"
	"fmt"
	"time"

	"systolicdb/internal/bitset"
	"systolicdb/internal/dedup"
	"systolicdb/internal/division"
	"systolicdb/internal/fault"
	"systolicdb/internal/intersect"
	"systolicdb/internal/join"
	"systolicdb/internal/lptdisk"
	"systolicdb/internal/machine"
	"systolicdb/internal/obs"
	"systolicdb/internal/perf"
	"systolicdb/internal/relation"
)

// Node is a relational-algebra plan node.
type Node interface {
	// label returns a short operator name for plan rendering.
	label() string
	children() []Node
}

// Scan reads a named base relation from the catalog.
type Scan struct{ Name string }

// Intersect is C = L ∩ R.
type Intersect struct{ L, R Node }

// Difference is C = L - R.
type Difference struct{ L, R Node }

// Union is C = L ∪ R.
type Union struct{ L, R Node }

// Dedup removes duplicate tuples from its child.
type Dedup struct{ Child Node }

// Project projects the child onto Cols and removes duplicates.
type Project struct {
	Child Node
	Cols  []int
}

// Join joins L and R under Spec.
type Join struct {
	L, R Node
	Spec join.Spec
}

// Divide divides L by R over the given column groups.
type Divide struct {
	L, R               Node
	AQuot, ADiv, BCols []int
}

// Select filters its child through a logic-per-track disk query (§9's
// "simple queries [that] never have to be processed outside the disks").
// Machine compilation requires the child to be a Scan, because the
// selection physically happens at the disk heads during the load; the host
// executor accepts any child.
type Select struct {
	Child Node
	Query lptdisk.Query
}

func (s Scan) label() string          { return fmt.Sprintf("scan(%s)", s.Name) }
func (Select) label() string          { return "select" }
func (n Select) children() []Node     { return []Node{n.Child} }
func (Intersect) label() string       { return "intersect" }
func (Difference) label() string      { return "difference" }
func (Union) label() string           { return "union" }
func (Dedup) label() string           { return "dedup" }
func (p Project) label() string       { return fmt.Sprintf("project%v", p.Cols) }
func (Join) label() string            { return "join" }
func (Divide) label() string          { return "divide" }
func (Scan) children() []Node         { return nil }
func (n Intersect) children() []Node  { return []Node{n.L, n.R} }
func (n Difference) children() []Node { return []Node{n.L, n.R} }
func (n Union) children() []Node      { return []Node{n.L, n.R} }
func (n Dedup) children() []Node      { return []Node{n.Child} }
func (n Project) children() []Node    { return []Node{n.Child} }
func (n Join) children() []Node       { return []Node{n.L, n.R} }
func (n Divide) children() []Node     { return []Node{n.L, n.R} }

// Catalog maps base-relation names to relations.
//
// Execute, Optimize and Compile treat the catalog — both the map and every
// relation reachable from it — as strictly read-only. That makes a Catalog
// value safe to share between any number of concurrent Execute/Compile
// calls, which is what the network server relies on: it hands each request
// a point-in-time snapshot of its catalog, and publishes updates by
// swapping in a freshly built map (copy-on-write) rather than mutating a
// map that in-flight queries may be reading. Callers must follow the same
// rule: never add, remove or replace entries of a catalog that a running
// query might hold, and never mutate a relation after putting it in one.
type Catalog map[string]*relation.Relation

// ExecStats accumulates whole-plan totals across every node of one
// Execute call.
type ExecStats struct {
	Pulses  int // simulated array pulses summed over all plan nodes (pulse backend)
	WordOps int // uint64 word operations summed over all plan nodes (bitset backend)

	// PeakTuples is the high-water mark of tuples held in executor-owned
	// storage at any instant: intermediate relations on the materializing
	// path; build tables, dedup sets and the accumulating result on the
	// streaming path. It is the number the streaming executor exists to
	// shrink. Folded with max, not added, so aggregating several plans
	// reports the worst plan.
	PeakTuples int

	// MaterializedNodes counts plan nodes that held a complete
	// intermediate result: every non-Scan node under the materializing
	// executor, only the pipeline breakers (join build sides, membership
	// sets, Divide) under the streaming one.
	MaterializedNodes int
}

// Options configures ExecuteCtx and CompileOpts.
type Options struct {
	// Metrics selects the registry per-node spans and compile counters are
	// recorded into. Nil selects obs.Default (mirroring
	// machine.Config.Metrics), so callers that need isolation — the network
	// server, concurrent tests — can pass a private registry.
	Metrics *obs.Registry

	// Stats, when non-nil, is filled with plan-wide totals (added to, so a
	// caller can aggregate several plans into one ExecStats).
	Stats *ExecStats

	// Backend selects the execution engine for the host executor: the
	// pulse simulator (the zero value) or the word-parallel bitset
	// backend. Per-node spans carry the backend as a metric label, so
	// /metrics distinguishes the two.
	Backend machine.Backend

	// Streaming routes ExecuteCtx through the pull-based iterator
	// executor (see iterator.go) instead of the materializing one.
	// Results are tuple-identical; only the memory profile and the
	// per-node metrics differ (streaming records one plan-level span,
	// not per-node spans). Ignored by Compile and the machine path.
	Streaming bool

	// peak carries the tuple high-water tracker through the materializing
	// executor's recursion; set internally by ExecuteCtx when Stats is
	// requested.
	peak *peakTracker
}

// registry resolves the effective metrics registry; usable on a nil
// receiver.
func (o *Options) registry() *obs.Registry {
	if o != nil && o.Metrics != nil {
		return o.Metrics
	}
	return obs.Default
}

// backend resolves the effective execution backend; usable on a nil
// receiver.
func (o *Options) backend() machine.Backend {
	if o != nil {
		return o.Backend
	}
	return machine.BackendPulse
}

// opName returns the stable operator name used as the node label on span
// metrics (label() is unsuitable: it embeds scan names and column lists,
// which would make the metric cardinality depend on the query text).
func opName(n Node) string {
	switch n.(type) {
	case Scan:
		return "scan"
	case Select:
		return "select"
	case Intersect:
		return "intersect"
	case Difference:
		return "difference"
	case Union:
		return "union"
	case Dedup:
		return "dedup"
	case Project:
		return "project"
	case Join:
		return "join"
	case Divide:
		return "divide"
	}
	return fmt.Sprintf("%T", n)
}

// recordSpan emits one per-plan-node span into the registry: host
// wall-clock time (inclusive of children, as spans are) and the node's own
// cost on the backend that ran it — simulated pulses plus their cost under
// the conservative 1980 technology for the pulse simulator, word
// operations for the bitset backend. Every series carries the backend as a
// label so /metrics distinguishes the two engines.
func recordSpan(reg *obs.Registry, n Node, backend machine.Backend, c nodeCost, start time.Time) {
	l := obs.Labels{"node": opName(n), "backend": backend.String()}
	reg.Timer("query_node_host_seconds", l).Observe(time.Since(start))
	if backend == machine.BackendBitset {
		reg.Counter("query_node_word_ops_total", l).Add(int64(c.wordOps))
		return
	}
	reg.Counter("query_node_pulses_total", l).Add(int64(c.pulses))
	reg.Timer("query_node_sim_seconds", l).Observe(perf.Conservative1980.PulseTime(c.pulses))
}

// Execute evaluates a plan on the host, running every operator on its
// systolic array (one operation at a time, no machine-level scheduling).
// Each plan node is recorded as a span in obs.Default (see recordSpan).
func Execute(n Node, cat Catalog) (*relation.Relation, error) {
	return ExecuteCtx(context.Background(), n, cat, nil)
}

// ExecuteCtx is Execute with cancellation and per-caller options. The
// context is checked before every plan node, so a cancelled or timed-out
// request stops between operators rather than running the whole plan; the
// partial work already done is still reflected in the metrics registry.
func ExecuteCtx(ctx context.Context, n Node, cat Catalog, o *Options) (*relation.Relation, error) {
	if n == nil {
		return nil, fmt.Errorf("query: nil plan node")
	}
	if o != nil && o.Streaming {
		return execStream(ctx, n, cat, o)
	}
	if o != nil && o.Stats != nil && o.peak == nil {
		// Run with a private tracker and fold the high-water mark in at
		// the end; the shallow copy keeps the caller's Options untouched.
		oc := *o
		oc.peak = &peakTracker{}
		rel, err := exec(ctx, n, cat, &oc)
		if err != nil {
			return nil, err
		}
		if oc.peak.peak > o.Stats.PeakTuples {
			o.Stats.PeakTuples = oc.peak.peak
		}
		o.Stats.MaterializedNodes += oc.peak.materialized
		return rel, nil
	}
	return exec(ctx, n, cat, o)
}

// tracker resolves the peak-tuple tracker; usable on a nil receiver (a
// nil *peakTracker is inert).
func (o *Options) tracker() *peakTracker {
	if o != nil {
		return o.peak
	}
	return nil
}

// nodeCost is the per-node cost on whichever backend ran it: simulated
// pulses for the pulse simulator, word operations for the bitset backend.
type nodeCost struct {
	pulses  int
	wordOps int
}

// exec evaluates one node (recursively), recording its span and
// accumulating plan-wide stats.
func exec(ctx context.Context, n Node, cat Catalog, o *Options) (*relation.Relation, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("query: plan cancelled at %s node: %w", opName(n), err)
	}
	tr := o.tracker()
	tr.enter()
	start := time.Now()
	rel, c, err := eval(ctx, n, cat, o)
	if err != nil {
		return nil, err
	}
	// Charge this node's materialized result; child results (accumulated
	// in the frame) die here, now that the operator has consumed them.
	own := 0
	if _, isScan := n.(Scan); !isScan {
		if rel != nil {
			own = rel.Cardinality()
		}
		tr.breaker()
	}
	tr.acquire(own)
	tr.exit(own)
	if o != nil && o.Stats != nil {
		o.Stats.Pulses += c.pulses
		o.Stats.WordOps += c.wordOps
	}
	recordSpan(o.registry(), n, o.backend(), c, start)
	return rel, nil
}

// eval computes one node on the selected backend, returning the result and
// the cost of the node's own run (children report their own).
func eval(ctx context.Context, n Node, cat Catalog, o *Options) (*relation.Relation, nodeCost, error) {
	if o.backend() == machine.BackendBitset {
		return evalBitset(ctx, n, cat, o)
	}
	return evalPulse(ctx, n, cat, o)
}

// evalPulse computes one node on the pulse-simulated systolic arrays.
func evalPulse(ctx context.Context, n Node, cat Catalog, o *Options) (*relation.Relation, nodeCost, error) {
	none := nodeCost{}
	switch op := n.(type) {
	case Scan:
		r, ok := cat[op.Name]
		if !ok {
			return nil, none, fmt.Errorf("query: unknown relation %q", op.Name)
		}
		return r, none, nil
	case Intersect:
		l, r, err := execPair(ctx, op.L, op.R, cat, o)
		if err != nil {
			return nil, none, err
		}
		res, err := intersect.Intersection(l, r)
		if err != nil {
			return nil, none, err
		}
		return res.Rel, nodeCost{pulses: res.Stats.Pulses}, nil
	case Difference:
		l, r, err := execPair(ctx, op.L, op.R, cat, o)
		if err != nil {
			return nil, none, err
		}
		res, err := intersect.Difference(l, r)
		if err != nil {
			return nil, none, err
		}
		return res.Rel, nodeCost{pulses: res.Stats.Pulses}, nil
	case Union:
		l, r, err := execPair(ctx, op.L, op.R, cat, o)
		if err != nil {
			return nil, none, err
		}
		res, err := dedup.Union(l, r)
		if err != nil {
			return nil, none, err
		}
		return res.Rel, nodeCost{pulses: res.Stats.Pulses}, nil
	case Dedup:
		c, err := exec(ctx, op.Child, cat, o)
		if err != nil {
			return nil, none, err
		}
		res, err := dedup.RemoveDuplicates(c)
		if err != nil {
			return nil, none, err
		}
		return res.Rel, nodeCost{pulses: res.Stats.Pulses}, nil
	case Project:
		c, err := exec(ctx, op.Child, cat, o)
		if err != nil {
			return nil, none, err
		}
		res, err := dedup.Project(c, op.Cols)
		if err != nil {
			return nil, none, err
		}
		return res.Rel, nodeCost{pulses: res.Stats.Pulses}, nil
	case Join:
		l, r, err := execPair(ctx, op.L, op.R, cat, o)
		if err != nil {
			return nil, none, err
		}
		res, err := join.Join(l, r, op.Spec)
		if err != nil {
			return nil, none, err
		}
		return res.Rel, nodeCost{pulses: res.Stats.Pulses}, nil
	case Divide:
		l, r, err := execPair(ctx, op.L, op.R, cat, o)
		if err != nil {
			return nil, none, err
		}
		res, err := division.Divide(l, r, op.AQuot, op.ADiv, op.BCols)
		if err != nil {
			return nil, none, err
		}
		return res.Rel, nodeCost{pulses: res.Stats.Pulses}, nil
	case Select:
		return evalSelect(ctx, op, cat, o)
	}
	return nil, none, fmt.Errorf("query: unsupported plan node %T", n)
}

// evalBitset computes one node on the word-parallel bitset backend. Every
// operator maps one-to-one onto internal/bitset; Scan and Select are
// host-side either way and shared with the pulse path.
func evalBitset(ctx context.Context, n Node, cat Catalog, o *Options) (*relation.Relation, nodeCost, error) {
	none := nodeCost{}
	switch op := n.(type) {
	case Scan:
		r, ok := cat[op.Name]
		if !ok {
			return nil, none, fmt.Errorf("query: unknown relation %q", op.Name)
		}
		return r, none, nil
	case Intersect:
		l, r, err := execPair(ctx, op.L, op.R, cat, o)
		if err != nil {
			return nil, none, err
		}
		res, err := bitset.Intersection(l, r)
		if err != nil {
			return nil, none, err
		}
		return res.Rel, nodeCost{wordOps: res.Stats.WordOps}, nil
	case Difference:
		l, r, err := execPair(ctx, op.L, op.R, cat, o)
		if err != nil {
			return nil, none, err
		}
		res, err := bitset.Difference(l, r)
		if err != nil {
			return nil, none, err
		}
		return res.Rel, nodeCost{wordOps: res.Stats.WordOps}, nil
	case Union:
		l, r, err := execPair(ctx, op.L, op.R, cat, o)
		if err != nil {
			return nil, none, err
		}
		res, err := bitset.Union(l, r)
		if err != nil {
			return nil, none, err
		}
		return res.Rel, nodeCost{wordOps: res.Stats.WordOps}, nil
	case Dedup:
		c, err := exec(ctx, op.Child, cat, o)
		if err != nil {
			return nil, none, err
		}
		res, err := bitset.RemoveDuplicates(c)
		if err != nil {
			return nil, none, err
		}
		return res.Rel, nodeCost{wordOps: res.Stats.WordOps}, nil
	case Project:
		c, err := exec(ctx, op.Child, cat, o)
		if err != nil {
			return nil, none, err
		}
		res, err := bitset.Project(c, op.Cols)
		if err != nil {
			return nil, none, err
		}
		return res.Rel, nodeCost{wordOps: res.Stats.WordOps}, nil
	case Join:
		l, r, err := execPair(ctx, op.L, op.R, cat, o)
		if err != nil {
			return nil, none, err
		}
		res, err := bitset.Join(l, r, op.Spec)
		if err != nil {
			return nil, none, err
		}
		return res.Rel, nodeCost{wordOps: res.Stats.WordOps}, nil
	case Divide:
		l, r, err := execPair(ctx, op.L, op.R, cat, o)
		if err != nil {
			return nil, none, err
		}
		res, err := bitset.Divide(l, r, op.AQuot, op.ADiv, op.BCols)
		if err != nil {
			return nil, none, err
		}
		return res.Rel, nodeCost{wordOps: res.Stats.WordOps}, nil
	case Select:
		return evalSelect(ctx, op, cat, o)
	}
	return nil, none, fmt.Errorf("query: unsupported plan node %T", n)
}

// evalSelect is the host-side row filter shared by both backends (§9's
// disk-head selection has no array run).
func evalSelect(ctx context.Context, op Select, cat Catalog, o *Options) (*relation.Relation, nodeCost, error) {
	c, err := exec(ctx, op.Child, cat, o)
	if err != nil {
		return nil, nodeCost{}, err
	}
	if err := op.Query.Validate(c.Schema()); err != nil {
		return nil, nodeCost{}, err
	}
	keep := make([]bool, c.Cardinality())
	for i := range keep {
		// A deadline must interrupt a long filter mid-node, not just
		// between nodes; check at batch granularity to stay cheap.
		if i%iterBatch == 0 {
			if err := ctx.Err(); err != nil {
				return nil, nodeCost{}, fmt.Errorf("query: plan cancelled at select node: %w", err)
			}
		}
		keep[i] = op.Query.Matches(c.Tuple(i))
	}
	sel, err := c.Select(keep, true)
	if err != nil {
		return nil, nodeCost{}, err
	}
	return sel, nodeCost{}, nil
}

func execPair(ctx context.Context, l, r Node, cat Catalog, o *Options) (*relation.Relation, *relation.Relation, error) {
	lr, err := exec(ctx, l, cat, o)
	if err != nil {
		return nil, nil, err
	}
	rr, err := exec(ctx, r, cat, o)
	if err != nil {
		return nil, nil, err
	}
	return lr, rr, nil
}

// ExecuteOnMachine compiles the plan into a transaction and runs it on the
// §9 machine m. When fallback is true and the machine gives up with a
// fault-recoverable error — retries exhausted, or every device of a kind
// quarantined with no host resource allowed — the plan is re-executed on
// the pristine host arrays instead; fellBack reports that the degraded
// path produced the result (res is nil in that case). If even the host
// path fails, the returned error still wraps the machine's recoverable
// error, so callers can map "nothing left to try" to a retryable condition
// (the network server answers 503).
func ExecuteOnMachine(ctx context.Context, n Node, cat Catalog, o *Options,
	m *machine.Machine, fallback bool) (rel *relation.Relation, res *machine.Result, fellBack bool, err error) {

	tasks, out, err := CompileOpts(n, cat, o)
	if err != nil {
		return nil, nil, false, err
	}
	return ExecuteTasks(ctx, n, cat, o, m, fallback, tasks, out)
}

// ExecuteTasks is ExecuteOnMachine for an already-compiled transaction —
// the plan-cache hit path, which skips CompileOpts entirely. The plan n
// is still needed for the host-fallback rung of the degradation ladder.
func ExecuteTasks(ctx context.Context, n Node, cat Catalog, o *Options,
	m *machine.Machine, fallback bool, tasks []machine.Task, out string) (rel *relation.Relation, res *machine.Result, fellBack bool, err error) {

	if err := ctx.Err(); err != nil {
		return nil, nil, false, err
	}
	res, err = m.Run(tasks)
	if err != nil {
		if !fallback || !fault.Recoverable(err) {
			return nil, nil, false, err
		}
		// Degradation ladder, machine rung exhausted: answer from the
		// host executor rather than failing the query.
		o.registry().Counter("query_machine_fallback_total", nil).Inc()
		rel, hostErr := ExecuteCtx(ctx, n, cat, o)
		if hostErr != nil {
			return nil, nil, true, fmt.Errorf("query: host fallback failed (%v) after machine gave up: %w", hostErr, err)
		}
		return rel, nil, true, nil
	}
	rel, ok := res.Relations[out]
	if !ok {
		return nil, nil, false, fmt.Errorf("query: machine run lost output %q", out)
	}
	return rel, res, false, nil
}

// Compile lowers a plan to a machine transaction. Every Scan becomes an
// OpLoad of the catalog relation; every operator becomes one task; the
// returned output name identifies the final result in machine.Result.
// Compilation cost and task counts are recorded into obs.Default.
func Compile(n Node, cat Catalog) (tasks []machine.Task, output string, err error) {
	return CompileOpts(n, cat, nil)
}

// CompileOpts is Compile recording into the registry selected by o (see
// Options.Metrics); a nil o behaves exactly like Compile.
func CompileOpts(n Node, cat Catalog, o *Options) (tasks []machine.Task, output string, err error) {
	reg := o.registry()
	stop := reg.Timer("query_compile_host_seconds", nil).Start()
	defer stop()
	c := &compiler{cat: cat, loaded: make(map[string]string)}
	output, err = c.lower(n)
	if err != nil {
		return nil, "", err
	}
	reg.Counter("query_compile_total", nil).Inc()
	reg.Counter("query_compile_tasks_total", nil).Add(int64(len(c.tasks)))
	return c.tasks, output, nil
}

type compiler struct {
	cat    Catalog
	tasks  []machine.Task
	loaded map[string]string // base relation -> output name of its load task
	n      int
}

func (c *compiler) fresh(prefix string) string {
	c.n++
	return fmt.Sprintf("%s_%d", prefix, c.n)
}

func (c *compiler) add(t machine.Task) string {
	t.ID = fmt.Sprintf("t%d", len(c.tasks))
	c.tasks = append(c.tasks, t)
	return t.Output
}

func (c *compiler) lower(n Node) (string, error) {
	switch op := n.(type) {
	case Scan:
		if name, ok := c.loaded[op.Name]; ok {
			return name, nil
		}
		r, ok := c.cat[op.Name]
		if !ok {
			return "", fmt.Errorf("query: unknown relation %q", op.Name)
		}
		out := c.add(machine.Task{Op: machine.OpLoad, Base: r, Output: op.Name})
		c.loaded[op.Name] = out
		return out, nil
	case Intersect:
		return c.binary(machine.OpIntersect, "inter", op.L, op.R, nil, nil)
	case Difference:
		return c.binary(machine.OpDifference, "diff", op.L, op.R, nil, nil)
	case Union:
		return c.binary(machine.OpUnion, "union", op.L, op.R, nil, nil)
	case Dedup:
		in, err := c.lower(op.Child)
		if err != nil {
			return "", err
		}
		return c.add(machine.Task{Op: machine.OpDedup, Inputs: []string{in}, Output: c.fresh("dedup")}), nil
	case Project:
		in, err := c.lower(op.Child)
		if err != nil {
			return "", err
		}
		return c.add(machine.Task{Op: machine.OpProject, Inputs: []string{in},
			Cols: op.Cols, Output: c.fresh("proj")}), nil
	case Join:
		spec := op.Spec
		return c.binary(machine.OpJoin, "join", op.L, op.R, &spec, nil)
	case Divide:
		return c.binary(machine.OpDivide, "quot", op.L, op.R, nil,
			&machine.DivideSpec{AQuot: op.AQuot, ADiv: op.ADiv, BCols: op.BCols})
	case Select:
		scan, ok := op.Child.(Scan)
		if !ok {
			return "", fmt.Errorf("query: machine selection happens at the disk heads; Select's child must be a Scan, not %T", op.Child)
		}
		r, have := c.cat[scan.Name]
		if !have {
			return "", fmt.Errorf("query: unknown relation %q", scan.Name)
		}
		// Selection-at-load is never memoised: two different Selects
		// over the same base relation are two different disk passes.
		return c.add(machine.Task{Op: machine.OpLoad, Base: r, Select: op.Query,
			Output: c.fresh("sel_" + scan.Name)}), nil
	}
	return "", fmt.Errorf("query: unsupported plan node %T", n)
}

func (c *compiler) binary(op machine.OpKind, prefix string, l, r Node, js *join.Spec, ds *machine.DivideSpec) (string, error) {
	li, err := c.lower(l)
	if err != nil {
		return "", err
	}
	ri, err := c.lower(r)
	if err != nil {
		return "", err
	}
	return c.add(machine.Task{Op: op, Inputs: []string{li, ri},
		Join: js, Divide: ds, Output: c.fresh(prefix)}), nil
}

// Render returns a one-line textual form of the plan for logging.
func Render(n Node) string {
	if n == nil {
		return "<nil>"
	}
	kids := n.children()
	if len(kids) == 0 {
		return n.label()
	}
	s := n.label() + "("
	for i, k := range kids {
		if i > 0 {
			s += ", "
		}
		s += Render(k)
	}
	return s + ")"
}
