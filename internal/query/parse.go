package query

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"systolicdb/internal/cells"
	"systolicdb/internal/join"
	"systolicdb/internal/lptdisk"
	"systolicdb/internal/relation"
)

// Parse builds a plan from a small textual algebra, used by the command-
// line tools:
//
//	scan(A)
//	intersect(e, e)        difference(e, e)        union(e, e)
//	dedup(e)               project(e, 0, 2)
//	join(e, e, 0=0)        join(e, e, 0=1, 1=0)    theta(e, e, 0>1)
//	divide(e, e, quot=0, div=1, by=0)              (multi-col: quot=0+1)
//	select(e, 0<5)         select(e, 0>=2, 1=3)
//
// Whitespace is insignificant. Column references are 0-based indices;
// select constants are integers (encoded elements).
func Parse(input string) (Node, error) {
	p := &parser{src: input}
	n, err := p.expr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("query: trailing input at offset %d: %q", p.pos, p.src[p.pos:])
	}
	return n, nil
}

type parser struct {
	src string
	pos int
}

func (p *parser) errf(format string, args ...any) error {
	return p.errAt(p.pos, format, args...)
}

// errAt reports an error at an explicit offset, for productions that have
// already consumed part of a malformed token.
func (p *parser) errAt(offset int, format string, args ...any) error {
	return fmt.Errorf("query: offset %d: %s", offset, fmt.Sprintf(format, args...))
}

func (p *parser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *parser) peek() byte {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) consume(c byte) error {
	if p.peek() != c {
		return p.errf("expected %q", string(c))
	}
	p.pos++
	return nil
}

func (p *parser) ident() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		c := rune(p.src[p.pos])
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' {
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return "", p.errf("expected identifier")
	}
	return p.src[start:p.pos], nil
}

func (p *parser) number() (int64, error) {
	p.skipSpace()
	start := p.pos
	if p.pos < len(p.src) && (p.src[p.pos] == '-' || p.src[p.pos] == '+') {
		p.pos++
	}
	digits := p.pos
	for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
		p.pos++
	}
	if p.pos == digits {
		// Report at the number's start, not past a consumed bare sign.
		return 0, p.errAt(start, "expected number")
	}
	v, err := strconv.ParseInt(p.src[start:p.pos], 10, 64)
	if err != nil {
		return 0, p.errAt(start, "bad number %q", p.src[start:p.pos])
	}
	if relation.Element(v) == relation.Null {
		return 0, p.errAt(start, "constant %d is the reserved null element and cannot appear in a plan", v)
	}
	return v, nil
}

// op parses one comparison operator.
func (p *parser) op() (cells.Op, error) {
	p.skipSpace()
	two := ""
	if p.pos+1 < len(p.src) {
		two = p.src[p.pos : p.pos+2]
	}
	switch two {
	case "!=":
		p.pos += 2
		return cells.NE, nil
	case "<=":
		p.pos += 2
		return cells.LE, nil
	case ">=":
		p.pos += 2
		return cells.GE, nil
	}
	switch p.peek() {
	case '=':
		p.pos++
		return cells.EQ, nil
	case '<':
		p.pos++
		return cells.LT, nil
	case '>':
		p.pos++
		return cells.GT, nil
	}
	return 0, p.errf("expected comparison operator")
}

func (p *parser) expr() (Node, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.consume('('); err != nil {
		return nil, err
	}
	var node Node
	switch strings.ToLower(name) {
	case "scan":
		rel, err := p.ident()
		if err != nil {
			return nil, err
		}
		node = Scan{Name: rel}

	case "intersect", "difference", "union", "join", "theta", "divide":
		l, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.consume(','); err != nil {
			return nil, err
		}
		r, err := p.expr()
		if err != nil {
			return nil, err
		}
		switch strings.ToLower(name) {
		case "intersect":
			node = Intersect{L: l, R: r}
		case "difference":
			node = Difference{L: l, R: r}
		case "union":
			node = Union{L: l, R: r}
		case "join":
			spec, err := p.joinSpec(false)
			if err != nil {
				return nil, err
			}
			node = Join{L: l, R: r, Spec: spec}
		case "theta":
			spec, err := p.joinSpec(true)
			if err != nil {
				return nil, err
			}
			node = Join{L: l, R: r, Spec: spec}
		case "divide":
			quot, div, by, err := p.divideSpec()
			if err != nil {
				return nil, err
			}
			node = Divide{L: l, R: r, AQuot: quot, ADiv: div, BCols: by}
		}

	case "dedup":
		child, err := p.expr()
		if err != nil {
			return nil, err
		}
		node = Dedup{Child: child}

	case "project":
		child, err := p.expr()
		if err != nil {
			return nil, err
		}
		var cols []int
		for p.peek() == ',' {
			p.pos++
			c, err := p.number()
			if err != nil {
				return nil, err
			}
			cols = append(cols, int(c))
		}
		if len(cols) == 0 {
			return nil, p.errf("project needs at least one column")
		}
		node = Project{Child: child, Cols: cols}

	case "select":
		child, err := p.expr()
		if err != nil {
			return nil, err
		}
		var q lptdisk.Query
		for p.peek() == ',' {
			p.pos++
			col, err := p.number()
			if err != nil {
				return nil, err
			}
			op, err := p.op()
			if err != nil {
				return nil, err
			}
			val, err := p.number()
			if err != nil {
				return nil, err
			}
			q = append(q, lptdisk.Predicate{Col: int(col), Op: op, Value: relation.Element(val)})
		}
		if len(q) == 0 {
			return nil, p.errf("select needs at least one predicate")
		}
		node = Select{Child: child, Query: q}

	default:
		return nil, p.errf("unknown operator %q", name)
	}
	if err := p.consume(')'); err != nil {
		return nil, err
	}
	return node, nil
}

// joinSpec parses ", 0=0" pairs (equi) or ", 0>1" (θ) clauses.
func (p *parser) joinSpec(theta bool) (Spec, error) {
	var spec Spec
	for p.peek() == ',' {
		p.pos++
		a, err := p.number()
		if err != nil {
			return spec, err
		}
		op, err := p.op()
		if err != nil {
			return spec, err
		}
		if !theta && op != cells.EQ {
			return spec, p.errf("join accepts only '='; use theta(...) for %v", op)
		}
		b, err := p.number()
		if err != nil {
			return spec, err
		}
		spec.ACols = append(spec.ACols, int(a))
		spec.BCols = append(spec.BCols, int(b))
		spec.Ops = append(spec.Ops, op)
	}
	if len(spec.ACols) == 0 {
		return spec, p.errf("join needs at least one column pair")
	}
	return spec, nil
}

// divideSpec parses ", quot=0[+1], div=1, by=0".
func (p *parser) divideSpec() (quot, div, by []int, err error) {
	groups := map[string]*[]int{"quot": &quot, "div": &div, "by": &by}
	for p.peek() == ',' {
		p.pos++
		key, err := p.ident()
		if err != nil {
			return nil, nil, nil, err
		}
		dst, ok := groups[strings.ToLower(key)]
		if !ok {
			return nil, nil, nil, p.errf("unknown divide group %q (want quot, div, by)", key)
		}
		if err := p.consume('='); err != nil {
			return nil, nil, nil, err
		}
		for {
			c, err := p.number()
			if err != nil {
				return nil, nil, nil, err
			}
			*dst = append(*dst, int(c))
			if p.peek() != '+' {
				break
			}
			p.pos++
		}
	}
	if len(quot) == 0 || len(div) == 0 || len(by) == 0 {
		return nil, nil, nil, p.errf("divide needs quot=, div= and by= groups")
	}
	return quot, div, by, nil
}

// Spec aliases the join package's Spec for the parser's internal use.
type Spec = join.Spec
