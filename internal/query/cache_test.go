package query

import (
	"fmt"
	"sync"
	"testing"

	"systolicdb/internal/machine"
	"systolicdb/internal/obs"
)

func cachePlan(name string) Node { return Dedup{Child: Scan{Name: name}} }

func canonicalOf(t *testing.T, n Node) string {
	t.Helper()
	return Render(n)
}

func TestPlanCacheHitMissAlias(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewPlanCache(4, reg)
	plan := cachePlan("A")
	canon := canonicalOf(t, plan)

	// Raw lookup on an empty cache: alias miss, not yet counted.
	if _, ok := c.Lookup("dedup( scan(A) )", machine.BackendPulse, true, 1); ok {
		t.Fatal("hit on empty cache")
	}
	if st := c.Stats(); st.Misses != 0 {
		t.Fatalf("alias miss counted as a miss: %+v", st)
	}
	// Canonical lookup settles the miss.
	if _, ok := c.LookupCanonical("dedup( scan(A) )", canon, machine.BackendPulse, true, 1); ok {
		t.Fatal("canonical hit on empty cache")
	}
	if st := c.Stats(); st.Misses != 1 {
		t.Fatalf("misses = %d, want 1", st.Misses)
	}

	c.Insert("dedup( scan(A) )", canon, machine.BackendPulse, true, 1, plan)
	if st := c.Stats(); st.Size != 1 {
		t.Fatalf("size = %d, want 1", st.Size)
	}
	// The exact raw string now hits without parsing.
	cp, ok := c.Lookup("dedup( scan(A) )", machine.BackendPulse, true, 1)
	if !ok {
		t.Fatal("raw alias lookup missed after insert")
	}
	if cp.Canonical != canon || cp.Rendered == "" {
		t.Fatalf("hit handle incomplete: %+v", cp)
	}
	// A differently-spelled raw string misses on the alias but hits
	// canonically, learning the new spelling.
	if _, ok := c.Lookup("dedup(scan(A))", machine.BackendPulse, true, 1); ok {
		t.Fatal("unlearned raw spelling hit")
	}
	if _, ok := c.LookupCanonical("dedup(scan(A))", canon, machine.BackendPulse, true, 1); !ok {
		t.Fatal("canonical lookup missed")
	}
	if _, ok := c.Lookup("dedup(scan(A))", machine.BackendPulse, true, 1); !ok {
		t.Fatal("alias not learned from canonical hit")
	}

	// Backend and optimize flag partition the key space.
	if _, ok := c.LookupCanonical("x", canon, machine.BackendBitset, true, 1); ok {
		t.Fatal("bitset lookup hit a pulse entry")
	}
	if _, ok := c.LookupCanonical("x", canon, machine.BackendPulse, false, 1); ok {
		t.Fatal("no-optimize lookup hit an optimized entry")
	}
}

func TestPlanCacheVersionInvalidation(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewPlanCache(4, reg)
	plan := cachePlan("A")
	canon := canonicalOf(t, plan)
	c.Insert("q", canon, machine.BackendPulse, true, 7, plan)

	if _, ok := c.LookupCanonical("q", canon, machine.BackendPulse, true, 7); !ok {
		t.Fatal("same-version lookup missed")
	}
	// A bumped catalog version invalidates the entry at lookup time.
	if _, ok := c.LookupCanonical("q", canon, machine.BackendPulse, true, 8); ok {
		t.Fatal("stale entry served after version bump")
	}
	st := c.Stats()
	if st.Invalidations != 1 {
		t.Errorf("invalidations = %d, want 1", st.Invalidations)
	}
	if st.Size != 0 {
		t.Errorf("stale entry not evicted: size = %d", st.Size)
	}
	// The alias died with the entry.
	if _, ok := c.Lookup("q", machine.BackendPulse, true, 8); ok {
		t.Fatal("alias survived invalidation")
	}
}

func TestPlanCacheLRUEviction(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewPlanCache(2, reg)
	for _, name := range []string{"A", "B"} {
		p := cachePlan(name)
		c.Insert(name, canonicalOf(t, p), machine.BackendPulse, true, 1, p)
	}
	// Touch A so B is the LRU entry.
	if _, ok := c.LookupCanonical("A", canonicalOf(t, cachePlan("A")), machine.BackendPulse, true, 1); !ok {
		t.Fatal("warm entry missed")
	}
	p := cachePlan("C")
	c.Insert("C", canonicalOf(t, p), machine.BackendPulse, true, 1, p)
	if st := c.Stats(); st.Size != 2 || st.Evictions != 1 {
		t.Fatalf("after overflow: %+v, want size 2 and one eviction", st)
	}
	if _, ok := c.LookupCanonical("B", canonicalOf(t, cachePlan("B")), machine.BackendPulse, true, 1); ok {
		t.Fatal("LRU entry B survived eviction")
	}
	if _, ok := c.LookupCanonical("A", canonicalOf(t, cachePlan("A")), machine.BackendPulse, true, 1); !ok {
		t.Fatal("recently used entry A was evicted")
	}
}

func TestPlanCacheDisabled(t *testing.T) {
	var nilCache *PlanCache
	if _, ok := nilCache.Lookup("q", machine.BackendPulse, true, 1); ok {
		t.Fatal("nil cache hit")
	}
	cp := nilCache.Insert("q", "c", machine.BackendPulse, true, 1, cachePlan("A"))
	if cp == nil || cp.Plan == nil {
		t.Fatal("nil cache must still return a usable handle")
	}
	zero := NewPlanCache(0, obs.NewRegistry())
	zero.Insert("q", "c", machine.BackendPulse, true, 1, cachePlan("A"))
	if st := zero.Stats(); st.Size != 0 {
		t.Fatalf("capacity-0 cache stored an entry: %+v", st)
	}
}

func TestCachedPlanTasksMemoized(t *testing.T) {
	cat := streamCatalog(t, 10)
	reg := obs.NewRegistry()
	c := NewPlanCache(4, reg)
	plan := Intersect{L: Scan{Name: "A"}, R: Scan{Name: "B"}}
	cp := c.Insert("q", Render(plan), machine.BackendPulse, true, 1, plan)

	o := &Options{Metrics: obs.NewRegistry()}
	t1, out1, err := cp.Tasks(cat, o)
	if err != nil {
		t.Fatal(err)
	}
	t2, out2, err := cp.Tasks(cat, o)
	if err != nil {
		t.Fatal(err)
	}
	if out1 != out2 || len(t1) != len(t2) {
		t.Fatalf("memoized compile differs: %d/%s vs %d/%s", len(t1), out1, len(t2), out2)
	}
	// Callers get independent slices: mutating one run's tasks must not
	// poison the cache.
	if len(t1) > 0 {
		t1[0].ID = "clobbered"
		t3, _, err := cp.Tasks(cat, o)
		if err != nil {
			t.Fatal(err)
		}
		if t3[0].ID == "clobbered" {
			t.Fatal("cached task list aliased to a caller's slice")
		}
	}
}

func TestScanNames(t *testing.T) {
	plan := Union{
		L: Join{L: Scan{Name: "A"}, R: Scan{Name: "B"}},
		R: Select{Child: Scan{Name: "A"}, Query: ltQ(0, 1)},
	}
	got := ScanNames(plan)
	want := []string{"A", "B"}
	if len(got) != len(want) {
		t.Fatalf("ScanNames = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ScanNames = %v, want %v", got, want)
		}
	}
}

// TestPlanCacheConcurrentInvalidation is the race-mode drill: readers hit
// the cache while writers insert at ever-higher versions, mimicking
// concurrent queries against a catalog receiving PUTs. Run with -race.
func TestPlanCacheConcurrentInvalidation(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewPlanCache(8, reg)
	cat := streamCatalog(t, 10)
	plan := Intersect{L: Scan{Name: "A"}, R: Scan{Name: "B"}}
	canon := Render(plan)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Writers: bump the version and re-insert, like preparePlan after a
	// PUT.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for v := uint64(0); v < 200; v++ {
				c.Insert(fmt.Sprintf("q%d", w), canon, machine.BackendPulse, true, v, plan)
			}
		}(w)
	}
	// Readers: lookup at a sliding version and compile on hits.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for v := uint64(0); v < 200; v++ {
				select {
				case <-stop:
					return
				default:
				}
				cp, ok := c.LookupCanonical(fmt.Sprintf("q%d", r%2), canon, machine.BackendPulse, true, v)
				if !ok {
					continue
				}
				if _, _, err := cp.Tasks(cat, &Options{Metrics: obs.NewRegistry()}); err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(stop)
	st := c.Stats()
	if st.Hits+st.Misses == 0 {
		t.Fatal("drill exercised no lookups")
	}
}
