package query

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"systolicdb/internal/cells"
	"systolicdb/internal/join"
	"systolicdb/internal/lptdisk"
	"systolicdb/internal/machine"
	"systolicdb/internal/obs"
	"systolicdb/internal/relation"
	"systolicdb/internal/workload"
)

func streamCatalog(t *testing.T, n int) Catalog {
	t.Helper()
	a, err := workload.Uniform(901, n, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := workload.Uniform(902, n, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	return Catalog{"A": a, "B": b}
}

// genPlan returns a random plan of the given depth whose result is always
// width 2 over the shared domain, so any node composes under any other.
func genPlan(rng *rand.Rand, depth int) Node {
	if depth <= 0 {
		if rng.Intn(2) == 0 {
			return Scan{Name: "A"}
		}
		return Scan{Name: "B"}
	}
	spec := join.Spec{ACols: []int{0}, BCols: []int{0}}
	switch rng.Intn(9) {
	case 0:
		return Intersect{L: genPlan(rng, depth-1), R: genPlan(rng, depth-1)}
	case 1:
		return Union{L: genPlan(rng, depth-1), R: genPlan(rng, depth-1)}
	case 2:
		return Difference{L: genPlan(rng, depth-1), R: genPlan(rng, depth-1)}
	case 3:
		return Dedup{Child: genPlan(rng, depth-1)}
	case 4:
		return Project{Child: genPlan(rng, depth-1), Cols: []int{1, 0}}
	case 5:
		return Select{Child: genPlan(rng, depth-1), Query: ltQ(rng.Intn(2), int64(1+rng.Intn(3)))}
	case 6:
		// θ-join at the leaves, projected back to width 2.
		theta := join.Spec{ACols: []int{0}, BCols: []int{0}, Ops: []cells.Op{cells.GT}}
		return Project{
			Child: Join{L: Scan{Name: "A"}, R: Scan{Name: "B"}, Spec: theta},
			Cols:  []int{0, 1},
		}
	case 7:
		// Division at the leaves: quotient column duplicated back to
		// width 2 (all columns share the pooled domain).
		return Project{
			Child: Divide{
				L:     Scan{Name: "A"},
				R:     Project{Child: Scan{Name: "B"}, Cols: []int{1}},
				AQuot: []int{0}, ADiv: []int{1}, BCols: []int{0},
			},
			Cols: []int{0, 0},
		}
	default:
		return Project{
			Child: Join{L: Scan{Name: "A"}, R: Scan{Name: "B"}, Spec: spec},
			Cols:  []int{0, 1},
		}
	}
}

// TestStreamingEquivalenceProperty is the 1000-plan property suite: every
// random plan must produce the same multiset of tuples under the
// materializing pulse executor, the materializing bitset executor, the
// streaming executor, and the streaming executor over the optimized
// (predicate-pushed-down) plan.
func TestStreamingEquivalenceProperty(t *testing.T) {
	cat := streamCatalog(t, 10)
	rng := rand.New(rand.NewSource(903))
	trials := 1000
	if testing.Short() {
		trials = 100
	}
	for trial := 0; trial < trials; trial++ {
		plan := genPlan(rng, 1+rng.Intn(2))
		want, err := ExecuteCtx(context.Background(), plan, cat, &Options{Metrics: obs.NewRegistry()})
		if err != nil {
			t.Fatalf("trial %d: pulse: %v\nplan: %s", trial, err, Render(plan))
		}
		bit, err := ExecuteCtx(context.Background(), plan, cat,
			&Options{Metrics: obs.NewRegistry(), Backend: machine.BackendBitset})
		if err != nil {
			t.Fatalf("trial %d: bitset: %v\nplan: %s", trial, err, Render(plan))
		}
		if !bit.EqualAsMultiset(want) {
			t.Fatalf("trial %d: bitset differs from pulse\nplan: %s", trial, Render(plan))
		}
		var st ExecStats
		got, err := ExecuteCtx(context.Background(), plan, cat,
			&Options{Metrics: obs.NewRegistry(), Streaming: true, Stats: &st})
		if err != nil {
			t.Fatalf("trial %d: streaming: %v\nplan: %s", trial, err, Render(plan))
		}
		if !got.EqualAsMultiset(want) {
			t.Fatalf("trial %d: streaming differs from materializing\nplan: %s", trial, Render(plan))
		}
		opt, err := Optimize(plan, cat)
		if err != nil {
			t.Fatalf("trial %d: optimize: %v\nplan: %s", trial, err, Render(plan))
		}
		gotOpt, err := ExecuteCtx(context.Background(), opt, cat,
			&Options{Metrics: obs.NewRegistry(), Streaming: true})
		if err != nil {
			t.Fatalf("trial %d: streaming optimized: %v\noriginal: %s\noptimized: %s",
				trial, err, Render(plan), Render(opt))
		}
		// Pushdown preserves sets (selection commutes with the set
		// operators' duplicate handling), matching Optimize's contract.
		if !gotOpt.EqualAsSet(want) {
			t.Fatalf("trial %d: streaming optimized differs\noriginal: %s\noptimized: %s",
				trial, Render(plan), Render(opt))
		}
	}
}

// TestStreamingPeakTuples pins the tentpole's memory claim: a select-heavy
// chain holds far fewer tuples under the streaming executor than under the
// materializing one, and materializes no nodes (the chain has no pipeline
// breaker).
func TestStreamingPeakTuples(t *testing.T) {
	a, err := workload.Uniform(904, 2000, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	cat := Catalog{"A": a}
	plan := Dedup{Child: Project{
		Child: Select{Child: Scan{Name: "A"}, Query: ltQ(0, 3)},
		Cols:  []int{0},
	}}

	var mat, str ExecStats
	want, err := ExecuteCtx(context.Background(), plan, cat, &Options{Metrics: obs.NewRegistry(), Stats: &mat})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExecuteCtx(context.Background(), plan, cat,
		&Options{Metrics: obs.NewRegistry(), Stats: &str, Streaming: true})
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualAsMultiset(want) {
		t.Fatal("streaming result differs from materializing result")
	}
	if mat.PeakTuples == 0 || str.PeakTuples == 0 {
		t.Fatalf("peak tuples not tracked: materializing %d, streaming %d", mat.PeakTuples, str.PeakTuples)
	}
	if str.PeakTuples >= mat.PeakTuples {
		t.Errorf("streaming peak %d not below materializing peak %d", str.PeakTuples, mat.PeakTuples)
	}
	if str.MaterializedNodes != 0 {
		t.Errorf("streaming chain materialized %d nodes, want 0", str.MaterializedNodes)
	}
	if mat.MaterializedNodes == 0 {
		t.Error("materializing executor reported no materialized nodes")
	}
}

// TestStreamingBreakerPeak: a join's build side is a pipeline breaker, so
// the streaming executor must report it in both PeakTuples and
// MaterializedNodes.
func TestStreamingBreakerPeak(t *testing.T) {
	cat := streamCatalog(t, 50)
	plan := Join{L: Scan{Name: "A"}, R: Scan{Name: "B"},
		Spec: join.Spec{ACols: []int{0}, BCols: []int{0}}}
	var st ExecStats
	if _, err := ExecuteCtx(context.Background(), plan, cat,
		&Options{Metrics: obs.NewRegistry(), Stats: &st, Streaming: true}); err != nil {
		t.Fatal(err)
	}
	if st.MaterializedNodes != 1 {
		t.Errorf("join plan materialized %d nodes, want 1 (the build side)", st.MaterializedNodes)
	}
	if st.PeakTuples < 50 {
		t.Errorf("peak %d does not cover the 50-tuple build table", st.PeakTuples)
	}
}

// TestStreamCancelMidNode is the deadline regression for the iterator
// executor: cancelling the context interrupts a long never-matching scan
// inside a single Next call, at batch granularity — the streaming analogue
// of a 504 deadline firing mid-node.
func TestStreamCancelMidNode(t *testing.T) {
	a, err := workload.Uniform(905, 4000, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	cat := Catalog{"A": a}
	// The predicate never matches, so a single Next would otherwise pull
	// all 4000 input rows before reporting exhaustion.
	plan := Select{Child: Scan{Name: "A"},
		Query: lptdisk.Query{{Col: 0, Op: cells.LT, Value: 0}}}
	ctx, cancel := context.WithCancel(context.Background())
	it, err := Open(ctx, plan, cat, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	cancel()
	if _, ok := it.Next(); ok {
		t.Fatal("Next yielded a tuple under a cancelled context")
	}
	if err := it.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("iterator error = %v, want context.Canceled", err)
	}
	if !strings.Contains(it.Err().Error(), "cancelled") {
		t.Errorf("error %q does not name the cancellation", it.Err())
	}
}

// countdownCtx reports Canceled only after its first n Err calls, making
// mid-node cancellation deterministic: early per-plan-node checks pass and
// a later per-batch check inside the operator loop trips.
type countdownCtx struct {
	context.Context
	mu        sync.Mutex
	remaining int
}

func (c *countdownCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.remaining <= 0 {
		return context.Canceled
	}
	c.remaining--
	return nil
}

// TestMaterializingSelectCancelMidNode pins the per-batch check inside
// evalSelect's filter loop: the plan-node entry checks (select, then its
// scan child) pass, the first in-loop check passes, and the second in-loop
// check — 256 rows into the filter — observes the cancellation.
func TestMaterializingSelectCancelMidNode(t *testing.T) {
	a, err := workload.Uniform(906, 1000, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	cat := Catalog{"A": a}
	plan := Select{Child: Scan{Name: "A"}, Query: ltQ(0, 3)}
	ctx := &countdownCtx{Context: context.Background(), remaining: 3}
	_, err = ExecuteCtx(ctx, plan, cat, &Options{Metrics: obs.NewRegistry()})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "select node") {
		t.Fatalf("error %q not raised by the select filter loop", err)
	}
}

// TestStreamingCancelledExecute: ExecuteCtx with Streaming set surfaces
// cancellation as an error, not a truncated result.
func TestStreamingCancelledExecute(t *testing.T) {
	a, err := workload.Uniform(907, 4000, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	cat := Catalog{"A": a}
	plan := Select{Child: Scan{Name: "A"},
		Query: lptdisk.Query{{Col: 0, Op: cells.LT, Value: 0}}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ExecuteCtx(ctx, plan, cat,
		&Options{Metrics: obs.NewRegistry(), Streaming: true}); !errors.Is(err, context.Canceled) {
		t.Fatalf("streaming ExecuteCtx error = %v, want context.Canceled", err)
	}
}

// TestStreamOpenErrors pins construction-time validation of the iterator
// tree: unknown scans, incompatible operands and bad projections are
// reported by Open, before any tuple flows.
func TestStreamOpenErrors(t *testing.T) {
	cat := streamCatalog(t, 10)
	cases := []struct {
		name string
		plan Node
	}{
		{"unknown scan", Scan{Name: "missing"}},
		{"bad project", Project{Child: Scan{Name: "A"}, Cols: []int{7}}},
		{"bad select", Select{Child: Scan{Name: "A"}, Query: ltQ(9, 1)}},
		{"bad join column", Join{L: Scan{Name: "A"}, R: Scan{Name: "B"},
			Spec: join.Spec{ACols: []int{5}, BCols: []int{0}}}},
	}
	for _, c := range cases {
		it, err := Open(context.Background(), c.plan, cat, nil)
		if err == nil {
			it.Close()
			t.Errorf("%s: Open accepted an invalid plan", c.name)
		}
	}
	var nilNode Node
	if _, err := Open(context.Background(), nilNode, cat, nil); err == nil {
		t.Error("nil plan accepted")
	}
}

// TestPushdownReducesTiles is the machine-level payoff of predicate
// pushdown: on a small fixed array, the optimized select-over-join loads
// A through the selecting disk (§9) and decomposes the join into fewer
// tiles than the bare join of the full relations — measured on the real
// decompose counters — while producing exactly the host result.
func TestPushdownReducesTiles(t *testing.T) {
	cat := streamCatalog(t, 64)
	spec := join.Spec{ACols: []int{0}, BCols: []int{0}}
	sel := Select{
		Child: Join{L: Scan{Name: "A"}, R: Scan{Name: "B"}, Spec: spec},
		Query: ltQ(1, 2), // selective predicate on A's columns
	}
	opt, err := Optimize(sel, cat)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := opt.(Join); !ok {
		t.Fatalf("optimized root is %T, want Join (select pushed into input)", opt)
	}

	tiles := obs.Default.Counter("decompose_tiles_total", nil)
	runTiles := func(plan Node) (*relation.Relation, int64) {
		t.Helper()
		tasks, out, err := Compile(plan, cat)
		if err != nil {
			t.Fatalf("compile %s: %v", Render(plan), err)
		}
		m, err := machine.Default1980(8) // 8x8 array: 64x64 join = 64 tiles
		if err != nil {
			t.Fatal(err)
		}
		before := tiles.Value()
		res, err := m.Run(tasks)
		if err != nil {
			t.Fatalf("run %s: %v", Render(plan), err)
		}
		return res.Relations[out], tiles.Value() - before
	}

	bare := Join{L: Scan{Name: "A"}, R: Scan{Name: "B"}, Spec: spec}
	_, bareTiles := runTiles(bare)
	got, optTiles := runTiles(opt)
	if bareTiles == 0 {
		t.Fatal("bare join ran no tiles; array size assumption broken")
	}
	if optTiles >= bareTiles {
		t.Errorf("pushdown did not reduce tiles: %d vs %d for the bare join", optTiles, bareTiles)
	}
	host, err := Execute(sel, cat)
	if err != nil {
		t.Fatal(err)
	}
	if !got.EqualAsMultiset(host) {
		t.Error("pushed-down machine result differs from host select-over-join")
	}
}
