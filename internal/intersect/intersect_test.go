package intersect

import (
	"math/rand"
	"testing"
	"testing/quick"

	"systolicdb/internal/relation"
	"systolicdb/internal/systolic"
)

var testDomain = relation.IntDomain("d")

func schema(m int) *relation.Schema {
	cols := make([]relation.Column, m)
	for i := range cols {
		cols[i] = relation.Column{Name: string(rune('a' + i)), Domain: testDomain}
	}
	return relation.MustSchema(cols...)
}

func rel(m int, rows ...[]int64) *relation.Relation {
	tuples := make([]relation.Tuple, len(rows))
	for i, r := range rows {
		t := make(relation.Tuple, m)
		for k := range t {
			t[k] = relation.Element(r[k])
		}
		tuples[i] = t
	}
	return relation.MustRelation(schema(m), tuples)
}

// refIntersect is the set-theoretic specification.
func refBits(a, b *relation.Relation) []bool {
	keep := make([]bool, a.Cardinality())
	for i := 0; i < a.Cardinality(); i++ {
		keep[i] = b.Contains(a.Tuple(i))
	}
	return keep
}

func TestIntersectionPaperExampleSize(t *testing.T) {
	// The worked example of Figure 4-1 intersects two 3x3 relations.
	a := rel(3, []int64{1, 2, 3}, []int64{4, 5, 6}, []int64{7, 8, 9})
	b := rel(3, []int64{4, 5, 6}, []int64{9, 9, 9}, []int64{1, 2, 3})
	res, err := Intersection(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := rel(3, []int64{1, 2, 3}, []int64{4, 5, 6})
	if !res.Rel.EqualAsSet(want) {
		t.Errorf("intersection = \n%v, want \n%v", res.Rel, want)
	}
}

func TestDifference(t *testing.T) {
	a := rel(2, []int64{1, 1}, []int64{2, 2}, []int64{3, 3})
	b := rel(2, []int64{2, 2})
	res, err := Difference(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := rel(2, []int64{1, 1}, []int64{3, 3})
	if !res.Rel.EqualAsSet(want) {
		t.Errorf("difference = \n%v, want \n%v", res.Rel, want)
	}
}

func TestIntersectionRandomAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		nA, nB, m := 1+rng.Intn(10), 1+rng.Intn(10), 1+rng.Intn(4)
		mk := func(n int) *relation.Relation {
			rows := make([][]int64, n)
			for i := range rows {
				row := make([]int64, m)
				for k := range row {
					row[k] = rng.Int63n(3)
				}
				rows[i] = row
			}
			return rel(m, rows...)
		}
		a, b := mk(nA), mk(nB)
		res, err := Intersection(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := refBits(a, b)
		for i := range want {
			if res.Keep[i] != want[i] {
				t.Fatalf("trial %d: keep[%d]=%v, want %v\nA=%v\nB=%v", trial, i, res.Keep[i], want[i], a, b)
			}
		}
	}
}

func TestIntersectionDifferencePartitionA(t *testing.T) {
	// Property: A∩B and A-B partition A (as a multi-relation).
	f := func(aRows, bRows [][2]uint8) bool {
		toRel := func(rows [][2]uint8) *relation.Relation {
			if len(rows) == 0 {
				rows = [][2]uint8{{0, 0}}
			}
			out := make([][]int64, len(rows))
			for i, r := range rows {
				out[i] = []int64{int64(r[0] % 4), int64(r[1] % 4)}
			}
			return rel(2, out...)
		}
		a, b := toRel(aRows), toRel(bRows)
		inter, err := Intersection(a, b)
		if err != nil {
			return false
		}
		diff, err := Difference(a, b)
		if err != nil {
			return false
		}
		union, err := inter.Rel.Concat(diff.Rel)
		if err != nil {
			return false
		}
		return union.EqualAsMultiset(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestIntersectionEmptyB(t *testing.T) {
	a := rel(2, []int64{1, 2})
	b := relation.MustRelation(schema(2), nil)
	res, err := Intersection(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rel.Cardinality() != 0 {
		t.Errorf("A ∩ ∅ has %d tuples", res.Rel.Cardinality())
	}
	diff, err := Difference(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !diff.Rel.EqualAsSet(a) {
		t.Errorf("A - ∅ != A")
	}
}

func TestIntersectionIncompatible(t *testing.T) {
	a := rel(2, []int64{1, 2})
	other := relation.MustRelation(
		relation.MustSchema(relation.Column{Name: "x", Domain: relation.IntDomain("other")},
			relation.Column{Name: "y", Domain: relation.IntDomain("other")}),
		[]relation.Tuple{{1, 2}})
	if _, err := Intersection(a, other); err == nil {
		t.Error("union-incompatible relations not rejected")
	}
	b3 := rel(3, []int64{1, 2, 3})
	if _, err := Intersection(a, b3); err == nil {
		t.Error("width mismatch not rejected")
	}
}

func TestRunAccumulatedRaggedInputs(t *testing.T) {
	if _, _, err := RunAccumulated(
		[]relation.Tuple{{1, 2}, {3}},
		[]relation.Tuple{{1, 2}}, nil, nil); err == nil {
		t.Error("ragged A not rejected")
	}
	if _, _, err := RunAccumulated(
		[]relation.Tuple{{1, 2}},
		[]relation.Tuple{{1}}, nil, nil); err == nil {
		t.Error("width mismatch between relations not rejected")
	}
}

func TestRunAccumulatedEmptyA(t *testing.T) {
	bits, st, err := RunAccumulated(nil, []relation.Tuple{{1}}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if bits != nil || st.Pulses != 0 {
		t.Errorf("empty A produced bits=%v pulses=%d", bits, st.Pulses)
	}
}

func TestRunAccumulatedWithTracer(t *testing.T) {
	a := []relation.Tuple{{1}, {2}}
	obs := 0
	_, st, err := RunAccumulated(a, a, nil, tracerFunc(func() { obs++ }))
	if err != nil {
		t.Fatal(err)
	}
	if obs != st.Pulses {
		t.Errorf("tracer observed %d pulses, stats say %d", obs, st.Pulses)
	}
}

type tracerFunc func()

func (f tracerFunc) Observe(systolic.Snapshot) { f() }

func TestNilRelationArguments(t *testing.T) {
	a := rel(1, []int64{1})
	if _, err := Intersection(nil, a); err == nil {
		t.Error("nil A not rejected")
	}
	if _, err := Difference(a, nil); err == nil {
		t.Error("nil B not rejected")
	}
}

func TestRunAccumulatedPulseCountLinear(t *testing.T) {
	mk := func(n int) []relation.Tuple {
		tuples := make([]relation.Tuple, n)
		for i := range tuples {
			tuples[i] = relation.Tuple{relation.Element(i), relation.Element(i)}
		}
		return tuples
	}
	_, s1, err := RunAccumulated(mk(10), mk(10), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, s2, err := RunAccumulated(mk(20), mk(20), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Pulses >= 3*s1.Pulses {
		t.Errorf("pulse growth superlinear: %d -> %d", s1.Pulses, s2.Pulses)
	}
}
