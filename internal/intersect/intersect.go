// Package intersect implements the intersection array of Kung & Lehman
// (1980) §4 (Figure 4-1) and, per §4.3, the difference array obtained from
// it by inverting the accumulated output.
//
// The intersection array is a single systolic grid made of two modules: the
// two-dimensional comparison array of §3 on the left (columns 0..m-1) and
// the linear accumulation array on the right (column m). Comparison results
// t_ij stream out of the comparison module and are OR-ed into per-tuple
// accumulators t_i that travel down the accumulation column:
//
//	t_i = OR_{1<=j<=n} t_ij                             (equation 4.1)
//
// A tuple a_i belongs to A ∩ B iff t_i is TRUE, and to A - B iff t_i is
// FALSE.
package intersect

import (
	"fmt"

	"systolicdb/internal/cells"
	"systolicdb/internal/comparison"
	"systolicdb/internal/relation"
	"systolicdb/internal/systolic"
)

// Result is the outcome of running the intersection or difference array.
type Result struct {
	Rel   *relation.Relation // materialised output relation
	Keep  []bool             // the accumulated t_i bit per tuple of A
	Stats systolic.Stats
}

// accumEnterPulse returns the pulse at which tuple i's accumulator (initial
// value FALSE) must enter the top of the accumulation column.
//
// Derivation: t_ij is latched by the accumulation cell in row r =
// Row(i,j) at pulse ExitPulse(i,j)+1. An accumulator entering the top at
// pulse τ_i reaches row r at pulse τ_i + r. Equating for all j gives
// τ_i = Alpha + 2i + M — independent of j, which is exactly why a single
// downward-moving accumulator can collect a whole row of T (paper §4.2).
func accumEnterPulse(s comparison.Schedule, i int) int {
	return s.Alpha + 2*i + s.M
}

// accumExitPulse returns the pulse at which tuple i's finished t_i leaves
// the bottom of the accumulation column.
func accumExitPulse(s comparison.Schedule, i int) int {
	return accumEnterPulse(s, i) + s.Rows - 1
}

// RunAccumulated builds and runs the combined comparison + accumulation
// grid of Figure 4-1 on tuple lists a and b, with init supplying the
// initial boolean for each pair (nil = all TRUE, the intersection setting;
// the remove-duplicates array of §5 passes a triangle mask instead). It
// returns the accumulated bit t_i for every tuple of a.
//
// An optional tracer observes every pulse of the combined grid.
func RunAccumulated(a, b []relation.Tuple, init comparison.InitFunc, tracer systolic.Tracer) ([]bool, systolic.Stats, error) {
	return RunAccumulatedWrap(a, b, init, tracer, nil)
}

// RunAccumulatedWrap is RunAccumulated with an optional cell wrapper
// applied to every processor (the fault layer's injection hook); a nil
// wrap behaves exactly like RunAccumulated.
func RunAccumulatedWrap(a, b []relation.Tuple, init comparison.InitFunc, tracer systolic.Tracer, wrap systolic.Wrap) ([]bool, systolic.Stats, error) {
	nA, nB := len(a), len(b)
	if nA == 0 {
		return nil, systolic.Stats{}, nil
	}
	if nB == 0 {
		return make([]bool, nA), systolic.Stats{}, nil
	}
	m := len(a[0])
	sched, err := comparison.NewSchedule(nA, nB, m)
	if err != nil {
		return nil, systolic.Stats{}, err
	}

	// Columns 0..m-1: comparison processors. Column m: accumulation.
	grid, err := systolic.NewGrid(sched.Rows, m+1, systolic.BuildWith(func(_, c int) systolic.Cell {
		if c < m {
			return cells.Compare{}
		}
		return cells.Accumulate{}
	}, wrap))
	if err != nil {
		return nil, systolic.Stats{}, err
	}
	grid.SetTracer(tracer)

	// Relation feeds, identical to comparison.Run2D.
	for k := 0; k < m; k++ {
		k := k
		if err := grid.Feed(systolic.North, k, func(p int) systolic.Token {
			q := p - sched.Alpha - k
			if q >= 0 && q%2 == 0 && q/2 < nA {
				i := q / 2
				if len(a[i]) != m {
					return systolic.Empty // widths validated below
				}
				return systolic.ValToken(a[i][k], systolic.Tag{Rel: "A", Tuple: i, Elem: k, Valid: true})
			}
			return systolic.Empty
		}); err != nil {
			return nil, systolic.Stats{}, err
		}
		if err := grid.Feed(systolic.South, k, func(p int) systolic.Token {
			q := p - sched.Beta - k
			if q >= 0 && q%2 == 0 && q/2 < nB {
				j := q / 2
				return systolic.ValToken(b[j][k], systolic.Tag{Rel: "B", Tuple: j, Elem: k, Valid: true})
			}
			return systolic.Empty
		}); err != nil {
			return nil, systolic.Stats{}, err
		}
	}
	for _, t := range a {
		if len(t) != m {
			return nil, systolic.Stats{}, fmt.Errorf("intersect: ragged tuple widths in A")
		}
	}
	for _, t := range b {
		if len(t) != m {
			return nil, systolic.Stats{}, fmt.Errorf("intersect: tuple width mismatch between relations")
		}
	}

	// West side: the initial booleans for each pair.
	for r := 0; r < sched.Rows; r++ {
		r := r
		if err := grid.Feed(systolic.West, r, func(p int) systolic.Token {
			i, j, ok := sched.PairAt(r, p)
			if !ok {
				return systolic.Empty
			}
			v := true
			if init != nil {
				v = init(i, j)
			}
			return systolic.FlagToken(v, systolic.Tag{Rel: "t", Tuple: i, Elem: j, Valid: true})
		}); err != nil {
			return nil, systolic.Stats{}, err
		}
	}

	// North side of the accumulation column: inject each tuple's
	// accumulator with initial value FALSE (paper §4.2: "provided we
	// initialize the value moving down through the accumulation array as
	// FALSE").
	if err := grid.Feed(systolic.North, m, func(p int) systolic.Token {
		q := p - sched.Alpha - m
		if q >= 0 && q%2 == 0 && q/2 < nA {
			return systolic.FlagToken(false, systolic.Tag{Rel: "acc", Tuple: q / 2, Valid: true})
		}
		return systolic.Empty
	}); err != nil {
		return nil, systolic.Stats{}, err
	}

	// South side of the accumulation column: collect the finished t_i.
	keep := make([]bool, nA)
	gotten := make([]bool, nA)
	var collectErr error
	if err := grid.Drain(systolic.South, m, func(p int, tok systolic.Token) {
		if !tok.HasFlag || collectErr != nil {
			return
		}
		// Invert accumExitPulse: p = Alpha + 2i + M + Rows - 1.
		q := p - sched.Alpha - m - (sched.Rows - 1)
		if q < 0 || q%2 != 0 || q/2 >= nA {
			collectErr = fmt.Errorf("intersect: unexpected accumulator output at pulse %d", p)
			return
		}
		i := q / 2
		if tok.Tag.Valid && tok.Tag.Tuple != i {
			collectErr = fmt.Errorf("intersect: accumulator misalignment at pulse %d: schedule says %d, tag says %d", p, i, tok.Tag.Tuple)
			return
		}
		if gotten[i] {
			collectErr = fmt.Errorf("intersect: duplicate accumulator output for tuple %d", i)
			return
		}
		keep[i] = tok.Flag
		gotten[i] = true
	}); err != nil {
		return nil, systolic.Stats{}, err
	}

	grid.Reset()
	grid.Run(accumExitPulse(sched, nA-1) + 1)
	if collectErr != nil {
		return nil, systolic.Stats{}, collectErr
	}
	for i, g := range gotten {
		if !g {
			return nil, systolic.Stats{}, fmt.Errorf("intersect: no accumulator output for tuple %d", i)
		}
	}
	return keep, grid.Stats(), nil
}

// checkCompatible validates the §2.4 precondition shared by intersection
// and difference.
func checkCompatible(a, b *relation.Relation) error {
	if a == nil || b == nil {
		return fmt.Errorf("intersect: nil relation")
	}
	if !a.Schema().UnionCompatible(b.Schema()) {
		return fmt.Errorf("intersect: relations are not union-compatible")
	}
	return nil
}

// Intersection computes C = A ∩ B on the intersection array: tuples of A
// whose accumulated t_i is TRUE (paper §4.2).
func Intersection(a, b *relation.Relation) (*Result, error) {
	return run(a, b, true)
}

// Difference computes C = A - B: tuples of A whose accumulated t_i is FALSE
// (paper §4.3; equivalently the intersection array with an inverter on the
// accumulation output line).
func Difference(a, b *relation.Relation) (*Result, error) {
	return run(a, b, false)
}

func run(a, b *relation.Relation, want bool) (*Result, error) {
	if err := checkCompatible(a, b); err != nil {
		return nil, err
	}
	keep, stats, err := RunAccumulated(a.Tuples(), b.Tuples(), nil, nil)
	if err != nil {
		return nil, err
	}
	if keep == nil {
		keep = []bool{}
	}
	rel, err := a.Select(keep, want)
	if err != nil {
		return nil, err
	}
	return &Result{Rel: rel, Keep: keep, Stats: stats}, nil
}
