package baseline

import (
	"sort"
	"testing"

	"systolicdb/internal/cells"
	"systolicdb/internal/relation"
	"systolicdb/internal/workload"
)

func TestIntersectionVariantsAgree(t *testing.T) {
	a, b, err := workload.OverlapPair(1, 30, 2, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	h, err := IntersectionHash(a, b)
	if err != nil {
		t.Fatal(err)
	}
	n, err := IntersectionNested(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !h.EqualAsMultiset(n) {
		t.Error("hash and nested intersections disagree")
	}
	if h.Cardinality() != 12 { // 0.4 * 30
		t.Errorf("intersection size %d, want 12", h.Cardinality())
	}
}

func TestDifferenceComplementsIntersection(t *testing.T) {
	a, b, err := workload.OverlapPair(2, 25, 2, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	inter, err := IntersectionHash(a, b)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := DifferenceHash(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if inter.Cardinality()+diff.Cardinality() != a.Cardinality() {
		t.Errorf("intersection %d + difference %d != |A| %d",
			inter.Cardinality(), diff.Cardinality(), a.Cardinality())
	}
}

func TestUnionAndDedup(t *testing.T) {
	a, err := workload.WithDuplicates(3, 30, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	hashDedup, err := RemoveDuplicatesHash(a)
	if err != nil {
		t.Fatal(err)
	}
	sortDedup, err := RemoveDuplicatesSort(a)
	if err != nil {
		t.Fatal(err)
	}
	if !hashDedup.EqualAsSet(sortDedup) {
		t.Error("hash and sort dedup disagree")
	}
	u, err := UnionHash(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if !u.EqualAsSet(a) {
		t.Error("A ∪ A != dedup(A)")
	}
}

func TestJoinVariantsAgree(t *testing.T) {
	a, b, err := workload.JoinPair(4, 25, 25, 2, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	spec := JoinSpec{ACols: []int{0}, BCols: []int{0}}
	hash, err := JoinPairsHash(a, b, spec)
	if err != nil {
		t.Fatal(err)
	}
	nested, err := JoinPairsNested(a, b, spec)
	if err != nil {
		t.Fatal(err)
	}
	merge, err := JoinPairsSortMerge(a, b, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	canon := func(ps [][2]int) [][2]int {
		sort.Slice(ps, func(i, j int) bool {
			if ps[i][0] != ps[j][0] {
				return ps[i][0] < ps[j][0]
			}
			return ps[i][1] < ps[j][1]
		})
		return ps
	}
	hash, nested, merge = canon(hash), canon(nested), canon(merge)
	if len(hash) != len(nested) || len(hash) != len(merge) {
		t.Fatalf("pair counts differ: hash=%d nested=%d merge=%d", len(hash), len(nested), len(merge))
	}
	for i := range hash {
		if hash[i] != nested[i] || hash[i] != merge[i] {
			t.Fatalf("pair %d differs: hash=%v nested=%v merge=%v", i, hash[i], nested[i], merge[i])
		}
	}
}

func TestThetaJoinNested(t *testing.T) {
	dom := relation.IntDomain("d")
	s := relation.MustSchema(relation.Column{Name: "x", Domain: dom})
	a := relation.MustRelation(s, []relation.Tuple{{1}, {5}, {9}})
	b := relation.MustRelation(s, []relation.Tuple{{4}})
	pairs, err := JoinPairsNested(a, b, JoinSpec{ACols: []int{0}, BCols: []int{0}, Ops: []cells.Op{cells.GT}})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 2 {
		t.Errorf("GT join found %d pairs, want 2", len(pairs))
	}
	if _, err := JoinPairsHash(a, b, JoinSpec{ACols: []int{0}, BCols: []int{0}, Ops: []cells.Op{cells.GT}}); err == nil {
		t.Error("hash join accepted θ predicate")
	}
}

func TestDivideBaseline(t *testing.T) {
	a, b, err := workload.DivisionCase(5, 8, 3, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Divide(a, b, []int{0}, []int{1}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	// Verify against direct computation.
	ys := make(map[relation.Element]map[relation.Element]bool)
	for i := 0; i < a.Cardinality(); i++ {
		tu := a.Tuple(i)
		if ys[tu[0]] == nil {
			ys[tu[0]] = make(map[relation.Element]bool)
		}
		ys[tu[0]][tu[1]] = true
	}
	for x, cov := range ys {
		want := true
		for j := 0; j < b.Cardinality(); j++ {
			if !cov[b.Tuple(j)[0]] {
				want = false
			}
		}
		if got := q.Contains(relation.Tuple{x}); got != want {
			t.Errorf("x=%d: in quotient=%v, want %v", x, got, want)
		}
	}
}

func TestProjectBaseline(t *testing.T) {
	dom := relation.IntDomain("d")
	s := relation.MustSchema(
		relation.Column{Name: "x", Domain: dom},
		relation.Column{Name: "y", Domain: dom})
	a := relation.MustRelation(s, []relation.Tuple{{1, 10}, {1, 20}, {2, 30}})
	p, err := Project(a, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if p.Cardinality() != 2 {
		t.Errorf("projection size %d, want 2", p.Cardinality())
	}
}

func TestValidationErrors(t *testing.T) {
	if _, err := IntersectionHash(nil, nil); err == nil {
		t.Error("nil relations not rejected")
	}
	dom := relation.IntDomain("d")
	s := relation.MustSchema(relation.Column{Name: "x", Domain: dom})
	a := relation.MustRelation(s, []relation.Tuple{{1}})
	if _, err := JoinPairsHash(a, a, JoinSpec{}); err == nil {
		t.Error("empty join spec not rejected")
	}
	if _, err := JoinPairsNested(a, a, JoinSpec{ACols: []int{2}, BCols: []int{0}}); err == nil {
		t.Error("out-of-range column not rejected")
	}
	if _, err := Divide(a, a, nil, []int{0}, []int{0}); err == nil {
		t.Error("empty quotient group not rejected")
	}
}
