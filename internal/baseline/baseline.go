// Package baseline provides conventional software implementations of every
// relational operation the systolic arrays compute. They play two roles:
//
//  1. The "conventional host computer" of the paper's introduction — the
//     thing the special-purpose chips are attached to and compared against
//     (experiment E17 benchmarks systolic simulation against these).
//
//  2. Executable specifications: every array's output is tested for
//     equality against the corresponding baseline on randomized workloads.
//
// Two algorithmic families are provided where it matters: hash-based
// (the practical choice) and nested-loop (the exact software analogue of
// what the arrays compute in hardware, O(|A||B|) comparisons).
package baseline

import (
	"fmt"
	"sort"

	"systolicdb/internal/cells"
	"systolicdb/internal/relation"
)

// key produces a map key for a tuple projection.
func key(t relation.Tuple, cols []int) string {
	if cols == nil {
		return t.String()
	}
	return t.Project(cols).String()
}

// IntersectionHash computes A ∩ B with a hash set over B.
func IntersectionHash(a, b *relation.Relation) (*relation.Relation, error) {
	if err := checkCompatible(a, b); err != nil {
		return nil, err
	}
	set := make(map[string]bool, b.Cardinality())
	for j := 0; j < b.Cardinality(); j++ {
		set[key(b.Tuple(j), nil)] = true
	}
	keep := make([]bool, a.Cardinality())
	for i := range keep {
		keep[i] = set[key(a.Tuple(i), nil)]
	}
	return a.Select(keep, true)
}

// IntersectionNested computes A ∩ B by nested-loop comparison — the exact
// software analogue of the intersection array's work.
func IntersectionNested(a, b *relation.Relation) (*relation.Relation, error) {
	if err := checkCompatible(a, b); err != nil {
		return nil, err
	}
	keep := make([]bool, a.Cardinality())
	for i := range keep {
		keep[i] = b.Contains(a.Tuple(i))
	}
	return a.Select(keep, true)
}

// DifferenceHash computes A - B with a hash set over B.
func DifferenceHash(a, b *relation.Relation) (*relation.Relation, error) {
	if err := checkCompatible(a, b); err != nil {
		return nil, err
	}
	set := make(map[string]bool, b.Cardinality())
	for j := 0; j < b.Cardinality(); j++ {
		set[key(b.Tuple(j), nil)] = true
	}
	keep := make([]bool, a.Cardinality())
	for i := range keep {
		keep[i] = set[key(a.Tuple(i), nil)]
	}
	return a.Select(keep, false)
}

// UnionHash computes A ∪ B by hashing.
func UnionHash(a, b *relation.Relation) (*relation.Relation, error) {
	if err := checkCompatible(a, b); err != nil {
		return nil, err
	}
	cat, err := a.Concat(b)
	if err != nil {
		return nil, err
	}
	return cat.Dedup(), nil
}

// RemoveDuplicatesHash removes duplicates by hashing, keeping first
// occurrences.
func RemoveDuplicatesHash(a *relation.Relation) (*relation.Relation, error) {
	if a == nil {
		return nil, fmt.Errorf("baseline: nil relation")
	}
	return a.Dedup(), nil
}

// RemoveDuplicatesSort removes duplicates by sorting — the classic
// alternative the database-machine literature compares against. The result
// is in sorted order, which is fine for set-level comparisons.
func RemoveDuplicatesSort(a *relation.Relation) (*relation.Relation, error) {
	if a == nil {
		return nil, fmt.Errorf("baseline: nil relation")
	}
	sorted := a.Sorted()
	keep := make([]bool, sorted.Cardinality())
	for i := range keep {
		keep[i] = i == 0 || sorted.Tuple(i).Compare(sorted.Tuple(i-1)) != 0
	}
	return sorted.Select(keep, true)
}

// Project computes the projection with hash-based duplicate removal.
func Project(a *relation.Relation, cols []int) (*relation.Relation, error) {
	if a == nil {
		return nil, fmt.Errorf("baseline: nil relation")
	}
	multi, err := a.ProjectColumns(cols)
	if err != nil {
		return nil, err
	}
	return multi.Dedup(), nil
}

// JoinSpec mirrors join.Spec for the baselines.
type JoinSpec struct {
	ACols []int
	BCols []int
	Ops   []cells.Op
}

func (s *JoinSpec) ops() []cells.Op {
	if s.Ops == nil {
		return make([]cells.Op, len(s.ACols))
	}
	return s.Ops
}

func (s *JoinSpec) equi() bool {
	for _, op := range s.ops() {
		if op != cells.EQ {
			return false
		}
	}
	return true
}

// JoinPairsHash returns the matching (i, j) index pairs of an equi-join
// using a hash table on B's join key. Only valid for all-EQ specs.
func JoinPairsHash(a, b *relation.Relation, spec JoinSpec) ([][2]int, error) {
	if err := validateJoin(a, b, &spec); err != nil {
		return nil, err
	}
	if !spec.equi() {
		return nil, fmt.Errorf("baseline: hash join requires equality predicates")
	}
	idx := make(map[string][]int, b.Cardinality())
	for j := 0; j < b.Cardinality(); j++ {
		k := key(b.Tuple(j), spec.BCols)
		idx[k] = append(idx[k], j)
	}
	var out [][2]int
	for i := 0; i < a.Cardinality(); i++ {
		for _, j := range idx[key(a.Tuple(i), spec.ACols)] {
			out = append(out, [2]int{i, j})
		}
	}
	return out, nil
}

// JoinPairsNested returns the matching (i, j) pairs by nested loops,
// supporting any θ operators.
func JoinPairsNested(a, b *relation.Relation, spec JoinSpec) ([][2]int, error) {
	if err := validateJoin(a, b, &spec); err != nil {
		return nil, err
	}
	ops := spec.ops()
	var out [][2]int
	for i := 0; i < a.Cardinality(); i++ {
		ta := a.Tuple(i)
		for j := 0; j < b.Cardinality(); j++ {
			tb := b.Tuple(j)
			ok := true
			for k := range spec.ACols {
				if !ops[k].Apply(ta[spec.ACols[k]], tb[spec.BCols[k]]) {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out, nil
}

// JoinPairsSortMerge returns the matching (i, j) pairs of a single-column
// equi-join by sort-merge.
func JoinPairsSortMerge(a, b *relation.Relation, aCol, bCol int) ([][2]int, error) {
	spec := JoinSpec{ACols: []int{aCol}, BCols: []int{bCol}}
	if err := validateJoin(a, b, &spec); err != nil {
		return nil, err
	}
	type kv struct {
		k relation.Element
		i int
	}
	as := make([]kv, a.Cardinality())
	for i := range as {
		as[i] = kv{a.Tuple(i)[aCol], i}
	}
	bs := make([]kv, b.Cardinality())
	for j := range bs {
		bs[j] = kv{b.Tuple(j)[bCol], j}
	}
	sort.Slice(as, func(x, y int) bool { return as[x].k < as[y].k })
	sort.Slice(bs, func(x, y int) bool { return bs[x].k < bs[y].k })
	var out [][2]int
	var ai, bi int
	for ai < len(as) && bi < len(bs) {
		switch {
		case as[ai].k < bs[bi].k:
			ai++
		case as[ai].k > bs[bi].k:
			bi++
		default:
			// Emit the cross product of the equal runs.
			aEnd := ai
			for aEnd < len(as) && as[aEnd].k == as[ai].k {
				aEnd++
			}
			bEnd := bi
			for bEnd < len(bs) && bs[bEnd].k == bs[bi].k {
				bEnd++
			}
			for x := ai; x < aEnd; x++ {
				for y := bi; y < bEnd; y++ {
					out = append(out, [2]int{as[x].i, bs[y].i})
				}
			}
			ai, bi = aEnd, bEnd
		}
	}
	return out, nil
}

// Divide computes the quotient of A(x-cols, y-cols) ÷ B by grouping.
func Divide(a, b *relation.Relation, aQuot, aDiv, bCols []int) (*relation.Relation, error) {
	if a == nil || b == nil {
		return nil, fmt.Errorf("baseline: nil relation")
	}
	if len(aDiv) != len(bCols) || len(aQuot) == 0 || len(aDiv) == 0 {
		return nil, fmt.Errorf("baseline: bad division column groups")
	}
	divisor := make(map[string]bool)
	for j := 0; j < b.Cardinality(); j++ {
		divisor[key(b.Tuple(j), bCols)] = true
	}
	groups := make(map[string]map[string]bool)
	repr := make(map[string]relation.Tuple)
	var order []string
	for i := 0; i < a.Cardinality(); i++ {
		t := a.Tuple(i)
		x := key(t, aQuot)
		if groups[x] == nil {
			groups[x] = make(map[string]bool)
			repr[x] = t.Project(aQuot)
			order = append(order, x)
		}
		groups[x][key(t, aDiv)] = true
	}
	schema, err := a.Schema().ProjectSchema(aQuot)
	if err != nil {
		return nil, err
	}
	out, err := relation.NewRelation(schema, nil)
	if err != nil {
		return nil, err
	}
	for _, x := range order {
		all := true
		for y := range divisor {
			if !groups[x][y] {
				all = false
				break
			}
		}
		if all {
			if err := out.Append(repr[x]); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

func checkCompatible(a, b *relation.Relation) error {
	if a == nil || b == nil {
		return fmt.Errorf("baseline: nil relation")
	}
	if !a.Schema().UnionCompatible(b.Schema()) {
		return fmt.Errorf("baseline: relations are not union-compatible")
	}
	return nil
}

func validateJoin(a, b *relation.Relation, spec *JoinSpec) error {
	if a == nil || b == nil {
		return fmt.Errorf("baseline: nil relation")
	}
	if len(spec.ACols) == 0 || len(spec.ACols) != len(spec.BCols) {
		return fmt.Errorf("baseline: bad join column lists")
	}
	if spec.Ops != nil && len(spec.Ops) != len(spec.ACols) {
		return fmt.Errorf("baseline: %d ops for %d columns", len(spec.Ops), len(spec.ACols))
	}
	for _, c := range spec.ACols {
		if c < 0 || c >= a.Width() {
			return fmt.Errorf("baseline: A column %d out of range", c)
		}
	}
	for _, c := range spec.BCols {
		if c < 0 || c >= b.Width() {
			return fmt.Errorf("baseline: B column %d out of range", c)
		}
	}
	return nil
}
