package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", Labels{"op": "join"})
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if again := r.Counter("ops_total", Labels{"op": "join"}); again != c {
		t.Error("same name+labels did not return the same counter")
	}
	if other := r.Counter("ops_total", Labels{"op": "dedup"}); other == c {
		t.Error("different labels returned the same counter")
	}

	g := r.Gauge("utilization", nil)
	g.Set(0.5)
	if got := g.Value(); got != 0.5 {
		t.Errorf("gauge = %v, want 0.5", got)
	}
	g.Set(0.25)
	if got := g.Value(); got != 0.25 {
		t.Errorf("gauge after reset = %v, want 0.25", got)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("pulses", nil, []float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("count = %d, want 4", h.Count())
	}
	if h.Sum() != 555.5 {
		t.Errorf("sum = %v, want 555.5", h.Sum())
	}
	if h.Mean() != 555.5/4 {
		t.Errorf("mean = %v", h.Mean())
	}
	buckets, count, sum, min, max := h.snapshot()
	if count != 4 || sum != 555.5 || min != 0.5 || max != 500 {
		t.Errorf("snapshot summary = (%d, %v, %v, %v)", count, sum, min, max)
	}
	wantCum := []uint64{1, 2, 3, 4} // le=1, le=10, le=100, le=+Inf
	for i, b := range buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket %d (le=%v) = %d, want %d", i, b.LE, b.Count, wantCum[i])
		}
	}
	if !math.IsInf(buckets[len(buckets)-1].LE, 1) {
		t.Error("last bucket is not +Inf")
	}
}

func TestTimer(t *testing.T) {
	r := NewRegistry()
	tm := r.Timer("span_seconds", Labels{"node": "scan"})
	stop := tm.Start()
	d := stop()
	if d < 0 {
		t.Errorf("elapsed = %v", d)
	}
	tm.Observe(2 * time.Second)
	h := r.Histogram("span_seconds", Labels{"node": "scan"}, nil)
	if h.Count() != 2 {
		t.Errorf("timer recorded %d observations, want 2", h.Count())
	}
	if h.Sum() < 2 {
		t.Errorf("timer sum %v < 2s", h.Sum())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", nil)
	defer func() {
		if recover() == nil {
			t.Error("registering x as gauge after counter did not panic")
		}
	}()
	r.Gauge("x", nil)
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("runs_total", nil).Add(3)
	r.Gauge("util", Labels{"grid": "a b"}).Set(0.75)
	r.Histogram("lat", nil, []float64{1}).Observe(0.5)

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"runs_total 3\n",
		`util{grid="a b"} 0.75` + "\n",
		`lat_bucket{le="1"} 1` + "\n",
		`lat_bucket{le="+Inf"} 1` + "\n",
		"lat_sum 0.5\n",
		"lat_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text exposition missing %q:\n%s", want, out)
		}
	}
	// Sorted by name: lat lines before runs_total before util.
	if strings.Index(out, "lat_bucket") > strings.Index(out, "runs_total") {
		t.Errorf("exposition not sorted:\n%s", out)
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("runs_total", Labels{"op": "join"}).Add(2)
	r.Histogram("lat", nil, []float64{1, 10}).Observe(3)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []struct {
			Name    string            `json:"name"`
			Labels  map[string]string `json:"labels"`
			Kind    string            `json:"kind"`
			Value   float64           `json:"value"`
			Count   uint64            `json:"count"`
			Buckets []struct {
				LE    string `json:"le"`
				Count uint64 `json:"count"`
			} `json:"buckets"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.Metrics) != 2 {
		t.Fatalf("got %d metrics, want 2:\n%s", len(doc.Metrics), buf.String())
	}
	hist := doc.Metrics[0]
	if hist.Name != "lat" || hist.Kind != "histogram" || hist.Count != 1 {
		t.Errorf("histogram sample = %+v", hist)
	}
	if got := hist.Buckets[len(hist.Buckets)-1].LE; got != "+Inf" {
		t.Errorf("last JSON bucket le = %q, want +Inf", got)
	}
	ctr := doc.Metrics[1]
	if ctr.Name != "runs_total" || ctr.Value != 2 || ctr.Labels["op"] != "join" {
		t.Errorf("counter sample = %+v", ctr)
	}
}

func TestReset(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", nil).Inc()
	r.Reset()
	if n := len(r.Snapshot()); n != 0 {
		t.Errorf("snapshot after reset has %d entries", n)
	}
	// Re-registration after reset starts from zero.
	if v := r.Counter("x", nil).Value(); v != 0 {
		t.Errorf("counter after reset = %d", v)
	}
}

// TestConcurrentUse hammers one registry from many goroutines; run with
// -race to back the concurrency claims.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Counter("c", Labels{"w": "x"}).Inc()
				r.Gauge("g", nil).Set(float64(j))
				r.Histogram("h", nil, nil).Observe(float64(j))
				r.Timer("t", nil).Observe(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c", Labels{"w": "x"}).Value(); got != 8*200 {
		t.Errorf("concurrent counter = %d, want %d", got, 8*200)
	}
	if got := r.Histogram("h", nil, nil).Count(); got != 8*200 {
		t.Errorf("concurrent histogram count = %d, want %d", got, 8*200)
	}
}
