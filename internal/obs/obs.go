// Package obs is the repository's unified metrics and observability layer:
// a small, dependency-free registry of counters, gauges, histograms and
// labeled timers that every pipeline layer (systolic engine, decomposition
// tiler, §9 machine scheduler, query executor/compiler) records into.
//
// The registry exists because each layer previously kept its own ad-hoc
// statistics (systolic.Stats, decompose.Stats, machine.Result) with no
// single way to observe a whole run. Those structs remain the per-call
// results; the registry is the cross-cutting accumulation — a
// machine-readable cost profile of everything that happened in a process,
// exposable as Prometheus-style text lines or as JSON.
//
// All metric types are safe for concurrent use; counters and gauges are
// lock-free, histograms take a short mutex per observation. Handles
// returned by Counter/Gauge/Histogram/Timer are stable and may be cached in
// package-level variables by hot callers.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Labels attaches dimensions to a metric. A metric's identity is its name
// plus the full label set; the same name with different label values is a
// different time series (Prometheus semantics).
type Labels map[string]string

// canonical renders labels in sorted-key order for use in map keys and in
// the text exposition format. An empty or nil label set renders as "".
func (l Labels) canonical() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, l[k])
	}
	return b.String()
}

// clone returns an independent copy so callers can't mutate a registered
// metric's identity after the fact.
func (l Labels) clone() Labels {
	if len(l) == 0 {
		return nil
	}
	out := make(Labels, len(l))
	for k, v := range l {
		out[k] = v
	}
	return out
}

// Kind discriminates metric types in snapshots.
type Kind string

// Metric kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Counter is a monotonically increasing count.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n (negative n is ignored: counters only go
// up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefBuckets are the default histogram bucket upper bounds: decades from
// one microsecond to one million, wide enough for both second-valued
// timers and pulse-count distributions.
var DefBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1, 10, 100, 1e3, 1e4, 1e5, 1e6}

// Histogram accumulates observations into cumulative buckets plus
// count/sum/min/max summary statistics.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // sorted upper bounds; an implicit +Inf bucket follows
	counts []uint64  // per-bucket (non-cumulative) counts, len(bounds)+1
	count  uint64
	sum    float64
	min    float64
	max    float64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the average observation, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// BucketCount is one cumulative histogram bucket in a snapshot.
type BucketCount struct {
	LE    float64 // upper bound; +Inf for the overflow bucket
	Count uint64
}

// MarshalJSON renders the bound as a string so the +Inf overflow bucket
// survives JSON encoding (encoding/json rejects infinite float64s).
func (b BucketCount) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		LE    string `json:"le"`
		Count uint64 `json:"count"`
	}{formatLE(b.LE), b.Count})
}

// snapshot returns the histogram's cumulative buckets and summary under the
// lock.
func (h *Histogram) snapshot() (buckets []BucketCount, count uint64, sum, min, max float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i]
		buckets = append(buckets, BucketCount{LE: b, Count: cum})
	}
	cum += h.counts[len(h.bounds)]
	buckets = append(buckets, BucketCount{LE: math.Inf(1), Count: cum})
	return buckets, h.count, h.sum, h.min, h.max
}

// Timer records durations (as seconds) into a histogram.
type Timer struct{ h *Histogram }

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) { t.h.Observe(d.Seconds()) }

// Start begins timing; the returned stop function records the elapsed host
// time and returns it.
func (t *Timer) Start() func() time.Duration {
	begin := time.Now()
	return func() time.Duration {
		d := time.Since(begin)
		t.Observe(d)
		return d
	}
}

// entry is one registered time series.
type entry struct {
	name   string
	labels Labels
	kind   Kind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry holds a process's metrics. The zero value is not usable; call
// NewRegistry. Most code records into the package-level Default registry.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// Default is the process-wide registry all built-in instrumentation records
// into. CLI tools dump it with WriteText/WriteJSON at the end of a run.
var Default = NewRegistry()

func (r *Registry) lookup(name string, labels Labels, kind Kind) *entry {
	key := name + "|" + labels.canonical()
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[key]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, e.kind, kind))
		}
		return e
	}
	e := &entry{name: name, labels: labels.clone(), kind: kind}
	r.entries[key] = e
	return e
}

// Counter returns (registering if needed) the counter with the given name
// and labels.
func (r *Registry) Counter(name string, labels Labels) *Counter {
	e := r.lookup(name, labels, KindCounter)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e.c == nil {
		e.c = &Counter{}
	}
	return e.c
}

// Gauge returns (registering if needed) the gauge with the given name and
// labels.
func (r *Registry) Gauge(name string, labels Labels) *Gauge {
	e := r.lookup(name, labels, KindGauge)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e.g == nil {
		e.g = &Gauge{}
	}
	return e.g
}

// Histogram returns (registering if needed) the histogram with the given
// name and labels. Buckets are the upper bounds (sorted ascending); nil
// selects DefBuckets. Buckets are fixed at first registration.
func (r *Registry) Histogram(name string, labels Labels, buckets []float64) *Histogram {
	e := r.lookup(name, labels, KindHistogram)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e.h == nil {
		if buckets == nil {
			buckets = DefBuckets
		}
		bounds := append([]float64(nil), buckets...)
		sort.Float64s(bounds)
		e.h = &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
	}
	return e.h
}

// Timer returns a timer recording into the histogram of the given name and
// labels (DefBuckets, in seconds).
func (r *Registry) Timer(name string, labels Labels) *Timer {
	return &Timer{h: r.Histogram(name, labels, nil)}
}

// Reset drops every registered metric. Handles obtained before Reset keep
// working but are no longer exposed; callers that cache handles should
// re-fetch after a Reset. Intended for CLI startup and tests.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries = make(map[string]*entry)
}

// Sample is one exported time series.
type Sample struct {
	Name   string  `json:"name"`
	Labels Labels  `json:"labels,omitempty"`
	Kind   Kind    `json:"kind"`
	Value  float64 `json:"value,omitempty"` // counter, gauge

	// Histogram fields.
	Count   uint64        `json:"count,omitempty"`
	Sum     float64       `json:"sum,omitempty"`
	Min     float64       `json:"min,omitempty"`
	Max     float64       `json:"max,omitempty"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot returns every registered metric, sorted by name then label set.
func (r *Registry) Snapshot() []Sample {
	r.mu.Lock()
	entries := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].name != entries[j].name {
			return entries[i].name < entries[j].name
		}
		return entries[i].labels.canonical() < entries[j].labels.canonical()
	})

	out := make([]Sample, 0, len(entries))
	for _, e := range entries {
		s := Sample{Name: e.name, Labels: e.labels.clone(), Kind: e.kind}
		switch e.kind {
		case KindCounter:
			if e.c != nil {
				s.Value = float64(e.c.Value())
			}
		case KindGauge:
			if e.g != nil {
				s.Value = e.g.Value()
			}
		case KindHistogram:
			if e.h != nil {
				s.Buckets, s.Count, s.Sum, s.Min, s.Max = e.h.snapshot()
			}
		}
		out = append(out, s)
	}
	return out
}

// formatValue renders a metric value without exponent noise for integral
// values.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// formatLE renders a bucket bound for the le label.
func formatLE(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return fmt.Sprintf("%g", v)
}

// labelString renders {k="v",...} or "" for no labels, with extra
// key/values appended after the metric's own labels.
func labelString(l Labels, extraK, extraV string) string {
	inner := l.canonical()
	if extraK != "" {
		if inner != "" {
			inner += ","
		}
		inner += fmt.Sprintf("%s=%q", extraK, extraV)
	}
	if inner == "" {
		return ""
	}
	return "{" + inner + "}"
}

// WriteText writes the registry in a Prometheus-style text exposition:
// one `name{label="v"} value` line per counter and gauge, and
// `_bucket`/`_sum`/`_count` lines per histogram.
func (r *Registry) WriteText(w io.Writer) error {
	for _, s := range r.Snapshot() {
		var err error
		switch s.Kind {
		case KindCounter, KindGauge:
			_, err = fmt.Fprintf(w, "%s%s %s\n", s.Name, labelString(s.Labels, "", ""), formatValue(s.Value))
		case KindHistogram:
			for _, b := range s.Buckets {
				if _, err = fmt.Fprintf(w, "%s_bucket%s %d\n", s.Name, labelString(s.Labels, "le", formatLE(b.LE)), b.Count); err != nil {
					return err
				}
			}
			if _, err = fmt.Fprintf(w, "%s_sum%s %s\n", s.Name, labelString(s.Labels, "", ""), formatValue(s.Sum)); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "%s_count%s %d\n", s.Name, labelString(s.Labels, "", ""), s.Count)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON writes the registry as a JSON document {"metrics": [...]}.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Metrics []Sample `json:"metrics"`
	}{Metrics: r.Snapshot()})
}
