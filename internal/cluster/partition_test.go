package cluster

import (
	"testing"

	"systolicdb/internal/relation"
	"systolicdb/internal/workload"
)

func TestRingDeterministicAndBalanced(t *testing.T) {
	r1, err := NewRing(4)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing(4)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := workload.Uniform(1, 4000, 2, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	for i := 0; i < rel.Cardinality(); i++ {
		s := r1.ShardFor(rel.Tuple(i))
		if s2 := r2.ShardFor(rel.Tuple(i)); s2 != s {
			t.Fatalf("rings over same shard count disagree: %d vs %d", s, s2)
		}
		counts[s]++
	}
	// 4000 tuples over 4 shards: vnode placement is hash-luck, but each
	// shard should hold a sane fraction, not be starved or hot.
	for s, c := range counts {
		if c < 400 || c > 2200 {
			t.Fatalf("shard %d holds %d of 4000 tuples — ring badly unbalanced: %v", s, c, counts)
		}
	}
}

func TestRingLocateMatchesLinearScan(t *testing.T) {
	r, err := NewRingVnodes(3, 8)
	if err != nil {
		t.Fatal(err)
	}
	linear := func(h uint64) int {
		for _, p := range r.points {
			if p.hash >= h {
				return p.shard
			}
		}
		return r.points[0].shard
	}
	for _, h := range []uint64{0, 1, 1 << 32, ^uint64(0), r.points[0].hash, r.points[len(r.points)-1].hash, r.points[len(r.points)-1].hash + 1} {
		if got, want := r.Locate(h), linear(h); got != want {
			t.Fatalf("Locate(%d) = %d, linear scan says %d", h, got, want)
		}
	}
}

func TestRingStabilityAcrossGrowth(t *testing.T) {
	// Consistent hashing: growing 4 → 5 shards should move only a
	// minority of keys, not reshuffle everything (a modulo scheme moves
	// ~80% here).
	r4, _ := NewRing(4)
	r5, _ := NewRing(5)
	rel, err := workload.Uniform(7, 5000, 2, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := 0; i < rel.Cardinality(); i++ {
		if r4.ShardFor(rel.Tuple(i)) != r5.ShardFor(rel.Tuple(i)) {
			moved++
		}
	}
	if frac := float64(moved) / 5000; frac > 0.5 {
		t.Fatalf("growth 4→5 moved %.0f%% of keys — not consistent hashing", frac*100)
	}
}

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(0); err == nil {
		t.Fatal("NewRing(0) should fail")
	}
	if _, err := NewRingVnodes(2, 0); err == nil {
		t.Fatal("NewRingVnodes(2, 0) should fail")
	}
}

func TestPartitionReassembles(t *testing.T) {
	rel, err := workload.WithDuplicates(3, 500, 3, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 5, 8} {
		ring, err := NewRing(shards)
		if err != nil {
			t.Fatal(err)
		}
		parts, err := Partition(rel, ring)
		if err != nil {
			t.Fatal(err)
		}
		if len(parts) != shards {
			t.Fatalf("%d shards produced %d partitions", shards, len(parts))
		}
		whole := parts[0]
		for _, p := range parts[1:] {
			if whole, err = whole.Concat(p); err != nil {
				t.Fatal(err)
			}
		}
		// Multiset equality: no tuple lost, duplicated, or invented —
		// including the duplicates WithDuplicates planted.
		if !whole.EqualAsMultiset(rel) {
			t.Fatalf("%d-way partition does not reassemble to the original", shards)
		}
	}
}

func TestPartitionColocatesEqualTuples(t *testing.T) {
	rel, err := workload.WithDuplicates(11, 400, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := NewRing(6)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := Partition(rel, ring)
	if err != nil {
		t.Fatal(err)
	}
	home := map[string]int{}
	for s, p := range parts {
		for i := 0; i < p.Cardinality(); i++ {
			k := p.Tuple(i).String()
			if prev, seen := home[k]; seen && prev != s {
				t.Fatalf("tuple %s lives on both shard %d and shard %d", k, prev, s)
			}
			home[k] = s
		}
	}
}

func TestPartitionByColocatesKeys(t *testing.T) {
	a, _, err := workload.JoinPair(5, 300, 300, 3, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := NewRing(5)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := PartitionBy(a, []int{0}, ring)
	if err != nil {
		t.Fatal(err)
	}
	home := map[relation.Element]int{}
	for s, p := range parts {
		for i := 0; i < p.Cardinality(); i++ {
			k := p.Tuple(i)[0]
			if prev, seen := home[k]; seen && prev != s {
				t.Fatalf("join key %d split across shards %d and %d", k, prev, s)
			}
			home[k] = s
		}
	}
}

func TestPartitionByValidation(t *testing.T) {
	rel, err := workload.Uniform(1, 10, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	ring, _ := NewRing(2)
	if _, err := PartitionBy(rel, []int{2}, ring); err == nil {
		t.Fatal("out-of-range partition column should fail")
	}
	if _, err := PartitionBy(nil, nil, ring); err == nil {
		t.Fatal("nil relation should fail")
	}
}
