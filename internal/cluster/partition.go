// Package cluster generalises the §9 machine's crossbar switch to a
// network: relations are hash-partitioned across N shard daemons, a
// coordinator compiles each query.Plan into per-shard sub-plans, scatters
// them with bounded parallelism, and gathers/merges the partial results.
// The tiling algebra of internal/decompose is what makes this sound —
// intersection, difference, union, duplicate removal and selection all
// decompose over tile (here: shard) boundaries, equi-joins co-partition on
// the join key, and division re-shuffles the dividend onto the quotient
// key while the divisor is gathered to every shard.
//
// Failure handling reuses the PR 3 ladder at cluster granularity:
// per-sub-query retries with backoff, shard quarantine after K consecutive
// failures, and promotion of the shard's WAL-shipped follower, surfaced
// through /healthz as cluster topology.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"

	"systolicdb/internal/relation"
)

// Ring is a consistent-hash ring mapping tuple hashes to shard indexes.
// Each shard owns Vnodes points on the ring, so shard counts that don't
// divide the hash space still balance, and (the classic consistent-hashing
// property) adding a shard moves only ~1/N of the keys.
//
// The ring is deterministic in the shard count alone: every coordinator —
// and every test — building a ring over N shards produces the same
// tuple→shard map.
type Ring struct {
	points []ringPoint // sorted by hash
	shards int
}

type ringPoint struct {
	hash  uint64
	shard int
}

// DefaultVnodes is the per-shard virtual-node count used by NewRing.
const DefaultVnodes = 64

// NewRing builds a ring over n shards with DefaultVnodes points each.
func NewRing(n int) (*Ring, error) {
	return NewRingVnodes(n, DefaultVnodes)
}

// NewRingVnodes builds a ring over n shards with v points per shard.
func NewRingVnodes(n, v int) (*Ring, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one shard, got %d", n)
	}
	if v <= 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one vnode per shard, got %d", v)
	}
	r := &Ring{shards: n, points: make([]ringPoint, 0, n*v)}
	for s := 0; s < n; s++ {
		for k := 0; k < v; k++ {
			// splitmix64 finalizer over (shard, vnode): structured inputs
			// like these cluster badly under byte-stream hashes, and a
			// clustered ring means a hot shard.
			r.points = append(r.points, ringPoint{hash: mix64(uint64(s)<<32 | uint64(k)), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard // deterministic on (unlikely) hash ties
	})
	return r, nil
}

// mix64 is the splitmix64 finalizer: a bijective avalanche over uint64.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Shards returns the number of shards on the ring.
func (r *Ring) Shards() int { return r.shards }

// Locate maps a hash to its owning shard: the first ring point at or after
// the hash, wrapping at the top.
func (r *Ring) Locate(h uint64) int {
	lo, hi := 0, len(r.points)
	for lo < hi {
		mid := (lo + hi) / 2
		if r.points[mid].hash < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(r.points) {
		lo = 0
	}
	return r.points[lo].shard
}

// HashTuple hashes a whole tuple — the partition key of every base
// relation at PUT time. Equal tuples land on equal shards, which is what
// makes intersection, difference, union and duplicate removal decompose:
// every copy of a tuple is on one shard.
func HashTuple(t relation.Tuple) uint64 {
	return HashKey(t, nil)
}

// HashKey hashes the projection of t onto cols (nil = all columns in
// order). Used by the shuffle paths: repartitioning a join side on its
// join key, or a dividend on its quotient columns.
func HashKey(t relation.Tuple, cols []int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	write := func(e relation.Element) {
		v := uint64(e)
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	if cols == nil {
		for _, e := range t {
			write(e)
		}
	} else {
		for _, c := range cols {
			write(t[c])
		}
	}
	return h.Sum64()
}

// ShardFor returns the shard owning tuple t under full-tuple hashing.
func (r *Ring) ShardFor(t relation.Tuple) int {
	return r.Locate(HashTuple(t))
}

// Partition splits rel into one relation per shard by full-tuple hash.
// Every returned relation shares rel's schema; empty partitions are
// present (zero tuples), so indexes align with shard indexes.
func Partition(rel *relation.Relation, r *Ring) ([]*relation.Relation, error) {
	return PartitionBy(rel, nil, r)
}

// PartitionBy splits rel across the ring hashing only cols (nil = all
// columns): the repartitioning primitive behind co-partitioned joins and
// quotient-keyed division.
func PartitionBy(rel *relation.Relation, cols []int, r *Ring) ([]*relation.Relation, error) {
	if rel == nil {
		return nil, fmt.Errorf("cluster: nil relation")
	}
	for _, c := range cols {
		if c < 0 || c >= rel.Width() {
			return nil, fmt.Errorf("cluster: partition column %d out of range for width %d", c, rel.Width())
		}
	}
	parts := make([][]relation.Tuple, r.Shards())
	for i := 0; i < rel.Cardinality(); i++ {
		t := rel.Tuple(i)
		s := r.Locate(HashKey(t, cols))
		parts[s] = append(parts[s], t.Clone())
	}
	out := make([]*relation.Relation, r.Shards())
	for s, tuples := range parts {
		pr, err := relation.NewRelation(rel.Schema(), tuples)
		if err != nil {
			return nil, fmt.Errorf("cluster: building partition %d: %w", s, err)
		}
		out[s] = pr
	}
	return out, nil
}
