package cluster

// White-box tests for withFailover's breaker accounting and writeBoth's
// promotion race: both invariants are about what happens between a call's
// network outcome and the slot's accounting, so they drive the unexported
// pieces directly instead of standing up HTTP shards.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"systolicdb/internal/fault"
	"systolicdb/internal/obs"
	"systolicdb/internal/relation"
)

func testParse(string) (*relation.Relation, error) {
	return nil, fmt.Errorf("testParse: not a real client")
}

func testCoordinator() *Coordinator {
	return &Coordinator{
		opt:    CoordinatorOptions{Retry: fault.RetryPolicy{MaxAttempts: 3, BaseDelay: 1, MaxDelay: 1}},
		health: fault.NewHealth(3),
		reg:    obs.NewRegistry(),
		widths: map[string]int{},
		rows:   map[string]int{},
	}
}

func testSlot(threshold int, cooldown time.Duration, replicated bool) (*shardSlot, *fakeClock) {
	br, clk := testBreaker(threshold, cooldown)
	slot := &shardSlot{
		id:      0,
		br:      br,
		primary: NewShardClient("http://primary.invalid", testParse, ClientOptions{}),
	}
	if replicated {
		slot.replica = NewShardClient("http://replica.invalid", testParse, ClientOptions{})
	}
	return slot, clk
}

// TestWithFailoverSettlesProbeOnContextExpiry pins the fix for the wedged
// half-open breaker: a probe that dies on the context path (the dominant
// outcome when probing into a partition) used to return early without
// reporting to the breaker, leaving probing=true forever — every later
// Allow denied until restart. The probe's failure must re-open the
// circuit and the next cooldown must admit a fresh probe.
func TestWithFailoverSettlesProbeOnContextExpiry(t *testing.T) {
	c := testCoordinator()
	slot, clk := testSlot(1, time.Second, false)

	// Open the circuit, then pass the cooldown so the next admitted call
	// is the half-open probe.
	slot.br.Failure()
	clk.advance(time.Second)

	ctx, cancel := context.WithCancel(context.Background())
	_, err := withFailover(ctx, c, slot, func(*ShardClient) (struct{}, error) {
		// The probe is in flight when the caller's deadline expires; the
		// transport surfaces a retryable connection error.
		cancel()
		return struct{}{}, fmt.Errorf("read tcp: i/o timeout")
	})
	if err == nil {
		t.Fatal("withFailover succeeded through an expired context")
	}
	if got := slot.br.State(); got != "open" {
		t.Fatalf("breaker state after failed probe = %s, want open", got)
	}
	clk.advance(time.Second)
	if !slot.br.Allow() {
		t.Fatal("breaker wedged: no probe admitted after the next cooldown")
	}
}

// TestWithFailoverReleasesProbeOnNonRetryableError: a probe answered with
// a query-fatal error proves the shard is reachable — no breaker charge,
// but the probe slot must be released so the ladder can keep probing.
func TestWithFailoverReleasesProbeOnNonRetryableError(t *testing.T) {
	c := testCoordinator()
	slot, clk := testSlot(1, time.Second, false)
	slot.br.Failure()
	clk.advance(time.Second)

	_, err := withFailover(context.Background(), c, slot, func(*ShardClient) (struct{}, error) {
		return struct{}{}, fmt.Errorf("shard answered: %w", context.Canceled)
	})
	if err == nil {
		t.Fatal("withFailover retried a non-retryable error to success")
	}
	if !slot.br.Allow() {
		t.Fatal("probe slot not released after a non-retryable answer")
	}
}

// TestBreakerAbortReleasesProbe pins Abort at the breaker level: it
// clears the in-flight probe mark without charging the circuit.
func TestBreakerAbortReleasesProbe(t *testing.T) {
	b, clk := testBreaker(1, time.Second)
	b.Failure()
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe denied after cooldown")
	}
	b.Abort()
	if b.State() != "half-open" {
		t.Fatalf("state after Abort = %s, want half-open", b.State())
	}
	if !b.Allow() {
		t.Fatal("Abort did not release the probe slot")
	}
}

// TestWriteBothRerunsAfterConcurrentPromotion pins the dual-write race:
// when a promotion lands between the primary's ack and the replica
// lookup, the acked copy lives only on the demoted ex-primary. writeBoth
// must re-run the mutation against the new primary before acking, or the
// zero acked-write-loss invariant breaks.
func TestWriteBothRerunsAfterConcurrentPromotion(t *testing.T) {
	c := testCoordinator()
	slot, _ := testSlot(3, time.Second, true)
	oldPrimary, replica := slot.primary, slot.replica

	var got []*ShardClient
	fired := false
	err := c.writeBoth(context.Background(), slot, func(cl *ShardClient) error {
		got = append(got, cl)
		if !fired {
			fired = true
			// A concurrent recordFailure promotes the replica while this
			// write's ack is still in flight.
			slot.mu.Lock()
			slot.primary = slot.replica
			slot.replica = nil
			slot.promoted = true
			slot.mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != oldPrimary || got[1] != replica {
		t.Fatalf("write path = %v, want [ex-primary, promoted replica]", got)
	}
}

// TestWriteBothWritesPrimaryThenReplica: the undisturbed path writes both
// copies exactly once.
func TestWriteBothWritesPrimaryThenReplica(t *testing.T) {
	c := testCoordinator()
	slot, _ := testSlot(3, time.Second, true)

	var got []*ShardClient
	err := c.writeBoth(context.Background(), slot, func(cl *ShardClient) error {
		got = append(got, cl)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != slot.primary || got[1] != slot.replica {
		t.Fatalf("write path = %v, want [primary, replica]", got)
	}
}

// TestRecordSuccessIgnoresStaleClient: a success answered by a demoted
// ex-primary must not re-close the new primary's breaker.
func TestRecordSuccessIgnoresStaleClient(t *testing.T) {
	c := testCoordinator()
	slot, _ := testSlot(1, time.Second, true)
	stale := slot.primary

	// Promote, then open the new primary's circuit.
	slot.mu.Lock()
	slot.primary = slot.replica
	slot.replica = nil
	slot.mu.Unlock()
	slot.br.Failure()
	if slot.br.State() != "open" {
		t.Fatalf("setup: breaker %s, want open", slot.br.State())
	}

	c.recordSuccess(slot, stale)
	if slot.br.State() != "open" {
		t.Fatalf("stale success re-closed the new primary's breaker (state %s)", slot.br.State())
	}
}
