package cluster

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"systolicdb/internal/fault"
	"systolicdb/internal/machine"
	"systolicdb/internal/obs"
	"systolicdb/internal/query"
	"systolicdb/internal/relation"
)

// RelationsRelationName is the reserved catalog name the coordinator
// persists its relation directory under (name, width, rows): the width
// oracle behind the co-partitioned join fast path, durable across
// coordinator restarts.
const RelationsRelationName = "__cluster_relations"

// CoordinatorOptions configures NewCoordinator.
type CoordinatorOptions struct {
	// Fanout and BroadcastLimit tune the distributed executor (see
	// ExecOptions).
	Fanout         int
	BroadcastLimit int

	// Backend, when non-empty, overrides every shard's execution engine
	// per sub-query ("pulse" or "bitset").
	Backend string

	// LocalBackend runs coordinator-local fallback operators.
	LocalBackend machine.Backend

	// PromoteAfter is K: consecutive sub-query failures on one shard
	// before it is quarantined and its replica promoted. Default 3.
	PromoteAfter int

	// BreakerThreshold is the consecutive-failure count that opens a
	// shard's circuit breaker; once open, calls to that shard fail
	// immediately (no connection, no timeout spent) and still feed the
	// quarantine/promotion ladder. Default: PromoteAfter.
	BreakerThreshold int

	// BreakerCooldown is how long an open circuit denies calls before
	// letting one half-open probe through. Default 500ms.
	BreakerCooldown time.Duration

	// HedgeAfter, when positive, hedges read sub-queries: if a shard's
	// primary hasn't answered within this duration, the same sub-query is
	// raced against its replica and the first success wins. Zero disables
	// hedging.
	HedgeAfter time.Duration

	// Retry backs off between attempts on a sick shard. Zero values take
	// the fault package defaults (4 attempts, 1ms..50ms exponential).
	Retry fault.RetryPolicy

	// ClientTimeout bounds each HTTP call to a shard. Default 30s.
	ClientTimeout time.Duration

	// WrapTransport, when non-nil, wraps every shard client's HTTP
	// transport — the netchaos injection point.
	WrapTransport func(http.RoundTripper) http.RoundTripper

	// Parse decodes typed result tables into the coordinator's domain
	// pool. Required.
	Parse TableParser

	// Persist, when non-nil, durably stores a reserved relation (the
	// shard map, the relation directory) — the coordinator daemon wires
	// this to its own WAL-backed commit path.
	Persist func(name string, rel *relation.Relation) error

	// Metrics receives coordinator and executor metrics. Nil selects a
	// private registry.
	Metrics *obs.Registry
}

// Coordinator owns a cluster of shard daemons: it partitions relations at
// PUT time, scatters query plans through the distributed executor, and
// walks the failure ladder — retry with backoff, quarantine after K
// consecutive failures, replica promotion — when a shard goes dark.
type Coordinator struct {
	opt    CoordinatorOptions
	ring   *Ring
	health *fault.Health
	reg    *obs.Registry
	slots  []*shardSlot
	engine *Engine

	// bootID + keySeq mint idempotency keys for writes whose client didn't
	// supply one: unique across coordinator restarts, stable across the
	// retries of one logical write.
	bootID string
	keySeq atomic.Uint64

	// version counts acked cluster mutations (PutKeyed/DeleteKeyed), the
	// coordinator-side mirror of server.Catalog's version counter: a
	// coordinator-mode plan cache stamps entries with it, so a PUT or
	// DELETE invalidates every cached plan on the next lookup. Shard
	// daemons need no extra signal — the same write bumps each shard's
	// own catalog version, invalidating cached per-shard sub-plans there.
	version atomic.Uint64

	mu     sync.RWMutex // guards widths/rows
	widths map[string]int
	rows   map[string]int
}

// Version returns the cluster mutation counter (see the field docs).
func (c *Coordinator) Version() uint64 { return c.version.Load() }

// shardSlot is one ring position: a primary client and the replica that
// takes over if the primary is quarantined.
type shardSlot struct {
	id int
	br *breaker // circuit breaker for the current primary

	mu       sync.RWMutex
	primary  *ShardClient
	replica  *ShardClient // nil = unreplicated (or already consumed)
	promoted bool
}

func (s *shardSlot) current() *ShardClient {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.primary
}

func (s *shardSlot) name() string { return fmt.Sprintf("shard-%d", s.id) }

// NewCoordinator builds a coordinator over the given shard specs. Shard
// order is ring position and must be stable across restarts.
func NewCoordinator(specs []ShardSpec, opt CoordinatorOptions) (*Coordinator, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("cluster: coordinator needs at least one shard")
	}
	if opt.Parse == nil {
		return nil, fmt.Errorf("cluster: coordinator needs a table parser")
	}
	if opt.PromoteAfter <= 0 {
		opt.PromoteAfter = 3
	}
	if opt.Metrics == nil {
		opt.Metrics = obs.NewRegistry()
	}
	ring, err := NewRing(len(specs))
	if err != nil {
		return nil, err
	}
	if opt.BreakerThreshold <= 0 {
		opt.BreakerThreshold = opt.PromoteAfter
	}
	c := &Coordinator{
		opt:    opt,
		ring:   ring,
		health: fault.NewHealth(opt.PromoteAfter),
		reg:    opt.Metrics,
		bootID: newBootID(),
		widths: map[string]int{},
		rows:   map[string]int{},
	}
	clientOpt := ClientOptions{
		Timeout:        opt.ClientTimeout,
		MaxIdlePerHost: max(opt.Fanout, len(specs)),
		Backend:        opt.Backend,
		Wrap:           opt.WrapTransport,
	}
	for i, spec := range specs {
		slot := &shardSlot{
			id:      i,
			br:      newBreaker(opt.BreakerThreshold, opt.BreakerCooldown),
			primary: NewShardClient(httpBase(spec.Addr), opt.Parse, clientOpt),
		}
		if spec.Replica != "" {
			slot.replica = NewShardClient(httpBase(spec.Replica), opt.Parse, clientOpt)
		}
		c.slots = append(c.slots, slot)
	}
	execs := make([]ShardExec, len(c.slots))
	for i, slot := range c.slots {
		execs[i] = &failoverShard{c: c, slot: slot}
	}
	c.engine, err = NewEngine(execs, ring, ExecOptions{
		Fanout:         opt.Fanout,
		BroadcastLimit: opt.BroadcastLimit,
		Backend:        opt.LocalBackend,
		Width:          c.widthOf,
		Metrics:        opt.Metrics,
	})
	if err != nil {
		return nil, err
	}
	c.persistState()
	return c, nil
}

// httpBase normalises a shard address to a base URL.
func httpBase(addr string) string {
	if strings.Contains(addr, "://") {
		return addr
	}
	return "http://" + addr
}

// newBootID draws a random coordinator incarnation tag, so minted
// idempotency keys never collide across restarts.
func newBootID() string {
	var b [6]byte
	if _, err := crand.Read(b[:]); err != nil {
		// Degrade to a time-based tag; uniqueness across restarts is a
		// best-effort property, collisions only risk a spurious dedup.
		return fmt.Sprintf("t%x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// nextKey mints an idempotency key for one logical write.
func (c *Coordinator) nextKey(name string) string {
	return fmt.Sprintf("%s-%d-%s", c.bootID, c.keySeq.Add(1), name)
}

// shardKey derives the per-shard idempotency key for one partition of a
// logical write. Each shard slot gets its own key (the partitions differ)
// but the SAME key goes to that slot's primary and replica, and survives
// every retry — so a torn ack retried through the ladder, or a record
// arriving over both the dual-write and WAL-shipping paths, commits
// exactly once per copy.
func shardKey(key string, shard int) string {
	return fmt.Sprintf("%s@s%d", key, shard)
}

func (c *Coordinator) widthOf(name string) (int, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	w, ok := c.widths[name]
	return w, ok
}

// Shards returns the shard count.
func (c *Coordinator) Shards() int { return len(c.slots) }

// Metrics exposes the coordinator's registry.
func (c *Coordinator) Metrics() *obs.Registry { return c.reg }

// failoverShard is the ShardExec the executor sees: every call walks the
// retry/quarantine/promotion ladder before giving up.
type failoverShard struct {
	c    *Coordinator
	slot *shardSlot
}

func (f *failoverShard) Query(ctx context.Context, plan string) (*relation.Relation, error) {
	primary := func(ctx context.Context) (*relation.Relation, error) {
		return withFailover(ctx, f.c, f.slot, func(cl *ShardClient) (*relation.Relation, error) {
			return cl.Query(ctx, plan)
		})
	}
	hedgeAfter := f.c.opt.HedgeAfter
	// Hedging only applies to plans over durable relations: __tmp_ shuffle
	// stages are staged on the primary alone, so a replica copy of such a
	// plan would answer from missing inputs.
	if hedgeAfter <= 0 || strings.Contains(plan, "__tmp_") {
		return primary(ctx)
	}
	f.slot.mu.RLock()
	replica := f.slot.replica
	f.slot.mu.RUnlock()
	if replica == nil {
		return primary(ctx)
	}
	return f.hedge(ctx, plan, primary, replica, hedgeAfter)
}

// hedge races the primary path (with its full failover ladder) against a
// late-started replica copy of the same read: if the primary hasn't
// answered within hedgeAfter — slow disk, lossy path, mid-promotion stall
// — the replica runs the identical sub-query and the first success wins.
// Reads only; writes stay on the strictly-ordered dual-write path.
func (f *failoverShard) hedge(ctx context.Context, plan string,
	primary func(context.Context) (*relation.Relation, error),
	replica *ShardClient, hedgeAfter time.Duration) (*relation.Relation, error) {
	type result struct {
		rel    *relation.Relation
		err    error
		hedged bool
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel() // reaps the losing leg
	ch := make(chan result, 2)
	go func() {
		rel, err := primary(hctx)
		ch <- result{rel, err, false}
	}()
	timer := time.NewTimer(hedgeAfter)
	defer timer.Stop()
	launched := false
	var firstErr error
	for pending := 1; pending > 0; {
		select {
		case r := <-ch:
			pending--
			if r.err == nil {
				if r.hedged {
					f.c.reg.Counter("cluster_hedge_wins_total", obs.Labels{"shard": f.slot.name()}).Inc()
				}
				return r.rel, nil
			}
			// Keep the primary leg's error for reporting: it carries the
			// ladder's diagnosis (quarantine, attempts exhausted).
			if !r.hedged || firstErr == nil {
				firstErr = r.err
			}
		case <-timer.C:
			if !launched {
				launched = true
				pending++
				f.c.reg.Counter("cluster_hedged_requests_total", obs.Labels{"shard": f.slot.name()}).Inc()
				go func() {
					rel, err := replica.Query(hctx, plan)
					ch <- result{rel, err, true}
				}()
			}
		}
	}
	return nil, firstErr
}

func (f *failoverShard) PutTemp(ctx context.Context, name string, rel *relation.Relation) error {
	_, err := withFailover(ctx, f.c, f.slot, func(cl *ShardClient) (struct{}, error) {
		return struct{}{}, cl.PutTemp(ctx, name, rel)
	})
	return err
}

func (f *failoverShard) DeleteTemp(ctx context.Context, name string) error {
	_, err := withFailover(ctx, f.c, f.slot, func(cl *ShardClient) (struct{}, error) {
		return struct{}{}, cl.DeleteTemp(ctx, name)
	})
	return err
}

// errBreakerOpen is the immediate failure an open circuit substitutes for
// a network call. It is retryable by classification but carries no new
// evidence about the shard: the health ladder advances on the half-open
// probes instead, so an open circuit under heavy load cannot snowball
// three noise failures into a quarantine.
var errBreakerOpen = fmt.Errorf("cluster: circuit breaker open")

// withFailover runs op against the slot's current primary, retrying
// retryable failures with backoff. When the health tracker quarantines
// the shard (K consecutive failures), the replica is promoted and the
// attempt budget starts over on the new primary. With no replica left,
// the quarantine stands and the call fails.
//
// An open circuit breaker short-circuits the network call entirely; a
// Retry-After hint from an overloaded shard stretches the backoff to at
// least what the shard asked for.
func withFailover[T any](ctx context.Context, c *Coordinator, slot *shardSlot, op func(*ShardClient) (T, error)) (T, error) {
	var zero T
	maxAttempts := c.opt.Retry.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 4
	}
	attempt := 0
	for {
		if c.health.Quarantined(slot.name()) {
			// Serialise against a promotion in flight: failure accounting
			// runs under slot.mu, so once the lock is acquired the
			// quarantine is either revived (a promotion won the race) or
			// final (no replica was left to promote).
			slot.mu.RLock()
			still := c.health.Quarantined(slot.name())
			slot.mu.RUnlock()
			if still {
				// Terminal rung: quarantined with nothing to promote.
				return zero, fmt.Errorf("cluster: %s is quarantined (no replica left)", slot.name())
			}
		}
		cl := slot.current()
		var v T
		var err error
		allowed := slot.br.Allow()
		if allowed {
			v, err = op(cl)
		} else {
			err = errBreakerOpen
			c.reg.Counter("cluster_breaker_denials_total", obs.Labels{"shard": slot.name()}).Inc()
		}
		if err == nil {
			c.recordSuccess(slot, cl)
			return v, nil
		}
		if ctx.Err() != nil || !RetryableShardError(err) {
			// The ladder is exiting without retrying, but an admitted call
			// still owes the breaker its outcome: if it was the half-open
			// probe, skipping this would leave the probe marked in flight
			// forever and the breaker would deny every future call to the
			// shard. A probe timing out against a partitioned shard is the
			// common case here.
			if allowed {
				c.recordAbort(slot, cl, err)
			}
			return zero, err
		}
		if err == errBreakerOpen {
			// A denial is the breaker doing its job, not the shard failing
			// again — only the probes change the evidence. A concurrent
			// promotion may have swapped the primary out from under the
			// denied call; restart the ladder against the new one.
			if slot.current() != cl {
				attempt = 0
				continue
			}
		} else {
			c.reg.Counter("cluster_shard_failures_total", obs.Labels{"shard": slot.name()}).Inc()
			switch c.recordFailure(slot, cl) {
			case failoverPromoted:
				attempt = 0
				continue
			case failoverTerminal:
				return zero, fmt.Errorf("cluster: %s quarantined after repeated failures: %w", slot.name(), err)
			}
		}
		attempt++
		if attempt >= maxAttempts {
			return zero, fmt.Errorf("cluster: %s failed %d attempts: %w", slot.name(), attempt, err)
		}
		delay := c.opt.Retry.Delay(attempt)
		if hint, ok := RetryAfterHint(err); ok && hint > delay {
			delay = hint
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return zero, ctx.Err()
		}
	}
}

// recordSuccess credits a successful call to the slot, guarded the same
// way recordFailure is: under concurrent load a call can succeed against
// a daemon that has since been demoted, and that stale success must not
// re-close the new primary's breaker or reset its health run.
func (c *Coordinator) recordSuccess(slot *shardSlot, cl *ShardClient) {
	slot.mu.RLock()
	same := slot.primary == cl
	slot.mu.RUnlock()
	if !same {
		return
	}
	slot.br.Success()
	c.health.RecordSuccess(slot.name())
}

// recordAbort settles the breaker for an admitted call that ran but is
// leaving the ladder without retrying. A retryable failure (typically a
// context deadline spent against a dead or partitioned shard) is network
// evidence and charges the breaker — a failed half-open probe re-opens
// for another cooldown. A non-retryable error means the shard answered
// and the query itself was bad: no evidence either way, so only the
// in-flight probe mark is released. Health accounting is untouched on
// both paths — quarantine advances on the retry ladder's evidence, not
// on exits from it.
func (c *Coordinator) recordAbort(slot *shardSlot, cl *ShardClient, err error) {
	slot.mu.RLock()
	same := slot.primary == cl
	slot.mu.RUnlock()
	if !same {
		return
	}
	if RetryableShardError(err) {
		slot.br.Failure()
	} else {
		slot.br.Abort()
	}
}

type failoverOutcome int

const (
	failoverRetry failoverOutcome = iota
	failoverPromoted
	failoverTerminal
)

// recordFailure charges one failure against the slot, promoting the
// replica when the failure tips the shard into quarantine. Accounting is
// serialised under slot.mu and checked against the client that actually
// failed: under concurrent load, dozens of in-flight calls can fail
// against a dead primary after one of them has already promoted the
// replica, and those stale failures must not re-quarantine the healthy
// new primary (that would consume the slot's last rung and go terminal).
//
// The promoted replica has been following the old primary's WAL, and
// dual-written PUTs make it current for every acked write — promotion
// loses nothing that was acknowledged.
func (c *Coordinator) recordFailure(slot *shardSlot, cl *ShardClient) failoverOutcome {
	slot.mu.Lock()
	if slot.primary != cl {
		// A concurrent caller already promoted past the daemon that failed
		// this op. Restart the ladder against the new primary.
		slot.mu.Unlock()
		return failoverPromoted
	}
	slot.br.Failure()
	if !c.health.RecordFailure(slot.name()) {
		slot.mu.Unlock()
		return failoverRetry
	}
	if slot.replica == nil {
		slot.mu.Unlock()
		return failoverTerminal
	}
	slot.primary = slot.replica
	slot.replica = nil
	slot.promoted = true
	// The new primary starts with a clean circuit.
	slot.br.Success()
	// Revive before releasing the lock so no caller can observe the
	// promoted slot still quarantined.
	c.health.Revive(slot.name())
	slot.mu.Unlock()
	c.reg.Counter("cluster_promotions_total", obs.Labels{"shard": slot.name()}).Inc()
	c.persistState()
	return failoverPromoted
}

// Execute evaluates a plan across the cluster.
func (c *Coordinator) Execute(ctx context.Context, n query.Node) (*relation.Relation, error) {
	return c.engine.Execute(ctx, n)
}

// Put hash-partitions rel by full tuple across the shards. Each
// partition is written to the shard's primary AND its replica before the
// whole Put is acknowledged — an acked write survives the loss of either
// copy, which is what lets promotion guarantee zero acked-write loss.
func (c *Coordinator) Put(ctx context.Context, name string, rel *relation.Relation) error {
	return c.PutKeyed(ctx, name, "", rel)
}

// PutKeyed is Put carrying the client's idempotency key ("" mints one):
// every shard copy of this logical write — primary, replica, each retry,
// even the WAL-shipped replay — carries the same per-shard key, so the
// write commits at most once per node no matter how many times the
// network makes the coordinator resend it.
func (c *Coordinator) PutKeyed(ctx context.Context, name, key string, rel *relation.Relation) error {
	if strings.HasPrefix(name, "__") {
		return fmt.Errorf("cluster: relation name %q is reserved", name)
	}
	if key == "" {
		key = c.nextKey(name)
	}
	parts, err := Partition(rel, c.ring)
	if err != nil {
		return err
	}
	err = c.engine.fanout(ctx, len(c.slots), func(i int) error {
		k := shardKey(key, i)
		return c.writeBoth(ctx, c.slots[i], func(cl *ShardClient) error {
			return cl.PutKeyed(ctx, name, k, parts[i])
		})
	})
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.widths[name] = rel.Width()
	c.rows[name] = rel.Cardinality()
	c.mu.Unlock()
	c.version.Add(1)
	c.persistState()
	return nil
}

// writeBoth applies one idempotent mutation to a slot's primary (with
// the failover ladder) and, when a replica is attached, to the replica
// as well. Both copies must succeed for the write to ack.
//
// After the primary acks, the slot is re-read under its lock and the
// answering client must still be the primary. If a concurrent promotion
// demoted it in between, the write landed only on the now-demoted
// ex-primary — acking there would violate zero acked-write loss, because
// the node serving reads from now on never saw it. The mutation is
// re-run against the new primary instead; the caller's idempotency key
// makes the duplicate landing on any node that did see it a no-op.
func (c *Coordinator) writeBoth(ctx context.Context, slot *shardSlot, op func(*ShardClient) error) error {
	for {
		var winner *ShardClient
		if _, err := withFailover(ctx, c, slot, func(cl *ShardClient) (struct{}, error) {
			winner = cl
			return struct{}{}, op(cl)
		}); err != nil {
			return err
		}
		slot.mu.RLock()
		stillPrimary := slot.primary == winner
		replica := slot.replica
		slot.mu.RUnlock()
		if !stillPrimary {
			continue
		}
		if replica == nil {
			return nil
		}
		if err := op(replica); err != nil {
			return fmt.Errorf("cluster: replica write for %s failed (write not acked): %w", slot.name(), err)
		}
		return nil
	}
}

// Delete drops a relation from every shard (primaries and replicas).
func (c *Coordinator) Delete(ctx context.Context, name string) (bool, error) {
	return c.DeleteKeyed(ctx, name, "")
}

// DeleteKeyed is Delete with an idempotency key (see PutKeyed).
func (c *Coordinator) DeleteKeyed(ctx context.Context, name, key string) (bool, error) {
	if key == "" {
		key = c.nextKey(name)
	}
	c.mu.RLock()
	_, existed := c.widths[name]
	c.mu.RUnlock()
	err := c.engine.fanout(ctx, len(c.slots), func(i int) error {
		k := shardKey(key, i)
		return c.writeBoth(ctx, c.slots[i], func(cl *ShardClient) error {
			return cl.DeleteKeyed(ctx, name, k)
		})
	})
	if err != nil {
		return existed, err
	}
	// The directory entry drops only once every shard confirmed the
	// delete: dropping it up front and failing the fanout would persist a
	// state where the relation still exists on shards but the width oracle
	// and Names() no longer know it.
	c.mu.Lock()
	delete(c.widths, name)
	delete(c.rows, name)
	c.mu.Unlock()
	c.version.Add(1)
	c.persistState()
	return existed, nil
}

// Gather reassembles a whole partitioned relation (GET /relations/{name}
// on the coordinator).
func (c *Coordinator) Gather(ctx context.Context, name string) (*relation.Relation, error) {
	return c.Execute(ctx, query.Scan{Name: name})
}

// Names lists the cluster-resident relations (sorted).
func (c *Coordinator) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.widths))
	for n := range c.widths {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Rows returns the global row count recorded at PUT time.
func (c *Coordinator) Rows(name string) (int, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	r, ok := c.rows[name]
	return r, ok
}

// ShardInfo is one shard's topology entry, as surfaced by /healthz.
type ShardInfo struct {
	ID          int    `json:"id"`
	Primary     string `json:"primary"`
	Replica     string `json:"replica,omitempty"`
	Promoted    bool   `json:"promoted,omitempty"`
	Quarantined bool   `json:"quarantined,omitempty"`
	// Breaker is the shard's circuit state ("closed", "open", "half-open").
	Breaker string `json:"breaker,omitempty"`
}

// Topology reports the current shard map.
func (c *Coordinator) Topology() []ShardInfo {
	out := make([]ShardInfo, len(c.slots))
	for i, slot := range c.slots {
		slot.mu.RLock()
		info := ShardInfo{ID: slot.id, Primary: slot.primary.Addr(), Promoted: slot.promoted}
		if slot.replica != nil {
			info.Replica = slot.replica.Addr()
		}
		slot.mu.RUnlock()
		info.Quarantined = c.health.Quarantined(slot.name())
		info.Breaker = slot.br.State()
		out[i] = info
	}
	return out
}

// Degraded reports whether any shard is quarantined or running on a
// promoted replica.
func (c *Coordinator) Degraded() bool {
	for _, s := range c.Topology() {
		if s.Quarantined || s.Promoted {
			return true
		}
	}
	return false
}

// persistState durably records the shard map and the relation directory
// through the Persist hook (no-op without one). Failures are counted, not
// fatal: topology state is reconstructable from flags and PUT traffic.
func (c *Coordinator) persistState() {
	if c.opt.Persist == nil {
		return
	}
	if rel, err := MembershipRelation(c.Topology()); err == nil {
		if err := c.opt.Persist(MembershipRelationName, rel); err != nil {
			c.reg.Counter("cluster_persist_errors_total", nil).Inc()
		}
	}
	if rel, err := c.relationsRelation(); err == nil {
		if err := c.opt.Persist(RelationsRelationName, rel); err != nil {
			c.reg.Counter("cluster_persist_errors_total", nil).Inc()
		}
	}
}

// relationsRelation encodes the relation directory: (name dict, width
// int, rows int).
func (c *Coordinator) relationsRelation() (*relation.Relation, error) {
	schema, err := relation.NewSchema(
		relation.Column{Name: "name", Domain: relation.DictDomain("cluster.relname")},
		relation.Column{Name: "width", Domain: relation.IntDomain("cluster.width")},
		relation.Column{Name: "rows", Domain: relation.IntDomain("cluster.rows")},
	)
	if err != nil {
		return nil, err
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	var tuples []relation.Tuple
	for name, w := range c.widths {
		e, err := schema.Col(0).Domain.EncodeString(name)
		if err != nil {
			return nil, err
		}
		tuples = append(tuples, relation.Tuple{e, relation.Element(w), relation.Element(c.rows[name])})
	}
	return relation.NewRelation(schema, tuples)
}

// ReconcileMembership replays a recovered shard map (the persisted
// MembershipRelationName relation) onto the flag-configured topology.
// When the persisted primary of a shard is the address configured as its
// replica, a promotion happened in a previous run: it is re-applied, so a
// coordinator restart does not resurrect a dead ex-primary.
//
// On boot, call RestoreDirectory BEFORE this: a reconcile that changes
// the topology re-persists the coordinator's whole state — including the
// relation directory — and would overwrite the not-yet-restored
// directory with an empty one.
func (c *Coordinator) ReconcileMembership(rel *relation.Relation) error {
	if rel == nil || rel.Width() != 4 {
		return fmt.Errorf("cluster: malformed membership relation")
	}
	type primaryRow struct {
		addr     string
		promoted bool
	}
	prim := map[int]primaryRow{}
	for i := 0; i < rel.Cardinality(); i++ {
		t := rel.Tuple(i)
		role, err := rel.Schema().Col(1).Domain.DecodeString(t[1])
		if err != nil {
			return err
		}
		if role != "primary" {
			continue
		}
		addr, err := rel.Schema().Col(2).Domain.DecodeString(t[2])
		if err != nil {
			return err
		}
		promoted, err := rel.Schema().Col(3).Domain.DecodeBool(t[3])
		if err != nil {
			return err
		}
		prim[int(t[0])] = primaryRow{addr: addr, promoted: promoted}
	}
	changed := false
	for _, slot := range c.slots {
		p, ok := prim[slot.id]
		if !ok {
			continue
		}
		slot.mu.Lock()
		switch {
		case slot.primary.Addr() == p.addr:
			// Flags agree with the persisted primary. If the operator also
			// configured a fresh replica, failover headroom is restored and
			// the old promotion is fully absorbed; with no replica, keep the
			// promoted mark so /healthz still reports the lost headroom.
			if p.promoted && !slot.promoted && slot.replica == nil {
				slot.promoted = true
				changed = true
			}
		case slot.replica != nil && slot.replica.Addr() == p.addr:
			slot.primary = slot.replica
			slot.replica = nil
			slot.promoted = true
			changed = true
		}
		slot.mu.Unlock()
	}
	if changed {
		c.persistState()
	}
	return nil
}

// RestoreDirectory re-seeds the width/row directory from a recovered
// RelationsRelationName relation (decoded through whatever domains it was
// recovered with) — it restores the width oracle after a coordinator
// restart.
func (c *Coordinator) RestoreDirectory(rel *relation.Relation) error {
	if rel == nil || rel.Width() != 3 {
		return fmt.Errorf("cluster: malformed relation directory")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := 0; i < rel.Cardinality(); i++ {
		t := rel.Tuple(i)
		name, err := rel.Schema().Col(0).Domain.DecodeString(t[0])
		if err != nil {
			return err
		}
		c.widths[name] = int(t[1])
		c.rows[name] = int(t[2])
	}
	return nil
}
