package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"systolicdb/internal/machine"
	"systolicdb/internal/obs"
	"systolicdb/internal/query"
	"systolicdb/internal/workload"
)

// TestDistributedEquivalenceProperty is the scatter/gather soundness
// property: for every decomposable operator and for the executor's
// join/division strategies,
//
//	gather(op(shard_1), ..., op(shard_N)) ≡ op(whole relation)
//
// as multisets, across 1000 randomly generated relation sets, shard counts
// 1–8, and both execution backends. Plans are drawn to exercise every
// classification (aligned, disjoint via joins, overlap via projections)
// plus the shuffle, broadcast and local-fallback paths.
func TestDistributedEquivalenceProperty(t *testing.T) {
	trials := 1000
	if testing.Short() {
		trials = 100
	}
	rng := rand.New(rand.NewSource(19800605)) // SIGMOD '80

	// Plan templates over the per-trial catalog: a/b are an overlap pair,
	// d has planted duplicates (all width m); j1/j2 are a join pair
	// (width mj); v1/v2 are a division dividend/divisor.
	templates := []func(m, mj int) string{
		func(m, mj int) string { return "scan(a)" },
		func(m, mj int) string { return "select(scan(d),0<120)" },
		func(m, mj int) string { return "intersect(scan(a),scan(b))" },
		func(m, mj int) string { return "difference(scan(a),scan(b))" },
		func(m, mj int) string { return "difference(scan(b),scan(a))" },
		func(m, mj int) string { return "union(scan(a),scan(b))" },
		func(m, mj int) string { return "dedup(scan(d))" },
		func(m, mj int) string { return fmt.Sprintf("project(scan(a),%d)", m-1) },
		func(m, mj int) string { return "project(scan(d),0)" },
		func(m, mj int) string { return "dedup(union(scan(a),scan(b)))" },
		func(m, mj int) string { return "select(intersect(scan(a),scan(b)),0>60)" },
		func(m, mj int) string { return "union(project(scan(a),0),project(scan(b),0))" },
		func(m, mj int) string { return "intersect(project(scan(a),0),project(scan(b),0))" }, // local fallback
		func(m, mj int) string { return "join(scan(j1),scan(j2),0=0)" },
		// Equi-join output width is 2*mj-1 (the redundant key column is
		// dropped), so mj-1 is always in range.
		func(m, mj int) string { return fmt.Sprintf("project(join(scan(j1),scan(j2),0=0),%d)", mj-1) },
		func(m, mj int) string { return "dedup(join(scan(j1),scan(j2),0=0))" },
		func(m, mj int) string { return "theta(scan(j1),scan(j2),0<0)" },
		func(m, mj int) string { return "join(project(scan(j1),0),scan(j2),0=0)" },
		func(m, mj int) string { return "divide(scan(v1),scan(v2),quot=0,div=1,by=0)" },
		func(m, mj int) string { return "project(divide(scan(v1),scan(v2),quot=0,div=1,by=0),0)" },
	}

	for trial := 0; trial < trials; trial++ {
		seed := rng.Int63()
		shards := 1 + rng.Intn(8)
		backend := machine.BackendPulse
		if trial%2 == 1 {
			backend = machine.BackendBitset
		}
		m := 1 + rng.Intn(3)
		mj := 1 + rng.Intn(3)
		n := 10 + rng.Intn(120)

		a, b, err := workload.OverlapPair(seed, n, m, rng.Float64())
		if err != nil {
			t.Fatal(err)
		}
		d, err := workload.WithDuplicates(seed+1, n, m, rng.Float64()*0.6)
		if err != nil {
			t.Fatal(err)
		}
		j1, j2, err := workload.JoinPair(seed+2, n/2+1, n/2+1, mj, rng.Float64()*3)
		if err != nil {
			t.Fatal(err)
		}
		v1, v2, err := workload.DivisionCase(seed+3, n/4+1, 1+rng.Intn(6), rng.Float64())
		if err != nil {
			t.Fatal(err)
		}
		base := query.Catalog{"a": a, "b": b, "d": d, "j1": j1, "j2": j2, "v1": v1, "v2": v2}

		plan := templates[rng.Intn(len(templates))](m, mj)
		node, err := query.Parse(plan)
		if err != nil {
			t.Fatalf("trial %d: parse %q: %v", trial, plan, err)
		}

		opt := ExecOptions{Backend: backend}
		// Alternate join strategy pressure: sometimes force the shuffle
		// path, sometimes expose PUT-time co-partitioning via the width
		// oracle.
		switch trial % 3 {
		case 1:
			opt.BroadcastLimit = 1
		case 2:
			opt.Width = func(name string) (int, bool) {
				if rel, ok := base[name]; ok {
					return rel.Width(), true
				}
				return 0, false
			}
		}

		ms, ring := memCluster(t, shards, backend, base)
		eng, err := NewEngine(asExecs(ms), ring, opt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.Execute(context.Background(), node)
		if err != nil {
			t.Fatalf("trial %d (seed %d, %d shards, %v): distributed %q: %v",
				trial, seed, shards, backend, plan, err)
		}
		want, err := query.ExecuteCtx(context.Background(), node, base, &query.Options{
			Metrics: obs.NewRegistry(), Backend: backend,
		})
		if err != nil {
			t.Fatalf("trial %d: single-node %q: %v", trial, plan, err)
		}
		if !got.EqualAsMultiset(want) {
			t.Fatalf("trial %d (seed %d, %d shards, %v): %q diverged: distributed %d rows, single-node %d rows",
				trial, seed, shards, backend, plan, got.Cardinality(), want.Cardinality())
		}
		for i, s := range ms {
			if leak := s.tempCount(); leak != 0 {
				t.Fatalf("trial %d: shard %d leaked %d temporaries after %q", trial, i, leak, plan)
			}
		}
	}
}
