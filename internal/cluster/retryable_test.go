package cluster

// White-box classification tests: RetryableShardError is the switch that
// decides whether a failed sub-query walks the retry→quarantine→promotion
// ladder or fails the whole query, so its verdict for every error family
// is pinned here as a table.

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"systolicdb/internal/relation"
)

func noParse(string) (*relation.Relation, error) {
	return nil, fmt.Errorf("no parser in this test")
}

// refusedErr dials a port nobody listens on.
func refusedErr(t *testing.T) error {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	cl := NewShardClient("http://"+addr, noParse, ClientOptions{Timeout: time.Second})
	_, err = cl.Healthz(context.Background())
	if err == nil {
		t.Fatal("healthz against a closed port succeeded")
	}
	return err
}

// timeoutErr times out a client against a server that never answers.
func timeoutErr(t *testing.T) error {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select { // hang until the client gives up
		case <-time.After(2 * time.Second):
		case <-r.Context().Done():
		}
	}))
	t.Cleanup(ts.Close)
	cl := NewShardClient(ts.URL, noParse, ClientOptions{Timeout: 50 * time.Millisecond})
	_, err := cl.Healthz(context.Background())
	if err == nil {
		t.Fatal("healthz against a hung server succeeded")
	}
	return err
}

// canceledErr cancels the caller's context mid-request.
func canceledErr(t *testing.T) error {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select { // hang until the client gives up
		case <-time.After(2 * time.Second):
		case <-r.Context().Done():
		}
	}))
	t.Cleanup(ts.Close)
	cl := NewShardClient(ts.URL, noParse, ClientOptions{Timeout: 5 * time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	_, err := cl.Healthz(ctx)
	if err == nil {
		t.Fatal("healthz with a cancelled context succeeded")
	}
	return err
}

// statusErr produces the client's error for one HTTP status.
func statusErr(t *testing.T, code int, header http.Header) error {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		for k, vs := range header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		http.Error(w, fmt.Sprintf(`{"error":"status %d"}`, code), code)
	}))
	t.Cleanup(ts.Close)
	cl := NewShardClient(ts.URL, noParse, ClientOptions{Timeout: time.Second})
	_, err := cl.Healthz(context.Background())
	if err == nil {
		t.Fatalf("healthz against a %d server succeeded", code)
	}
	return err
}

// queryErr runs a Query against a server answering rawBody with 200.
func queryErr(t *testing.T, rawBody string) error {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(rawBody))
	}))
	t.Cleanup(ts.Close)
	cl := NewShardClient(ts.URL, noParse, ClientOptions{Timeout: time.Second})
	_, err := cl.Query(context.Background(), "scan r")
	if err == nil {
		t.Fatalf("query against body %q succeeded", rawBody)
	}
	return err
}

func TestRetryableShardErrorClassification(t *testing.T) {
	cases := []struct {
		name      string
		err       func(t *testing.T) error
		retryable bool
	}{
		{"nil", func(*testing.T) error { return nil }, false},
		{"connection refused", refusedErr, true},
		{"client timeout", timeoutErr, true},
		{"context canceled", canceledErr, false},
		{"context canceled bare", func(*testing.T) error { return context.Canceled }, false},
		{"context canceled wrapped", func(*testing.T) error {
			return fmt.Errorf("sub-query: %w", context.Canceled)
		}, false},
		{"429 too many requests", func(t *testing.T) error {
			return statusErr(t, http.StatusTooManyRequests, nil)
		}, true},
		{"500 internal error", func(t *testing.T) error {
			return statusErr(t, http.StatusInternalServerError, nil)
		}, true},
		{"503 unavailable", func(t *testing.T) error {
			return statusErr(t, http.StatusServiceUnavailable, nil)
		}, true},
		{"504 gateway timeout", func(t *testing.T) error {
			return statusErr(t, http.StatusGatewayTimeout, nil)
		}, true},
		{"400 bad request", func(t *testing.T) error {
			return statusErr(t, http.StatusBadRequest, nil)
		}, false},
		{"404 not found", func(t *testing.T) error {
			return statusErr(t, http.StatusNotFound, nil)
		}, false},
		{"422 bad plan", func(t *testing.T) error {
			return statusErr(t, http.StatusUnprocessableEntity, nil)
		}, false},
		{"malformed json body", func(t *testing.T) error {
			return queryErr(t, `{"table": truncated`)
		}, true},
		{"unparseable result table", func(t *testing.T) error {
			return queryErr(t, `{"table":"not a table"}`)
		}, true},
		{"table checksum mismatch", func(t *testing.T) error {
			return queryErr(t, `{"table":"k\tv\n1\t2\n","table_crc32":12345}`)
		}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.err(t)
			if got := RetryableShardError(err); got != tc.retryable {
				t.Fatalf("RetryableShardError(%v) = %v, want %v", err, got, tc.retryable)
			}
			// Wrapping (as the ladder does with fmt.Errorf %w) must not
			// change the verdict.
			if err != nil {
				wrapped := fmt.Errorf("shard-3: %w", err)
				if got := RetryableShardError(wrapped); got != tc.retryable {
					t.Fatalf("RetryableShardError(wrapped %v) = %v, want %v", err, got, tc.retryable)
				}
			}
		})
	}
}

func TestChecksumMismatchNamesBothSums(t *testing.T) {
	err := queryErr(t, `{"table":"k\tv\n1\t2\n","table_crc32":12345}`)
	if !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("checksum error not descriptive: %v", err)
	}
}

func TestRetryAfterHint(t *testing.T) {
	err := statusErr(t, http.StatusServiceUnavailable, http.Header{"Retry-After": []string{"2"}})
	hint, ok := RetryAfterHint(err)
	if !ok || hint != 2*time.Second {
		t.Fatalf("RetryAfterHint = %v, %v; want 2s, true", hint, ok)
	}
	// The hint survives the ladder's error wrapping.
	hint, ok = RetryAfterHint(fmt.Errorf("shard-0 failed 3 attempts: %w", err))
	if !ok || hint != 2*time.Second {
		t.Fatalf("RetryAfterHint(wrapped) = %v, %v; want 2s, true", hint, ok)
	}
	if _, ok := RetryAfterHint(statusErr(t, http.StatusServiceUnavailable, nil)); ok {
		t.Fatal("hint reported for a response without Retry-After")
	}
	if _, ok := RetryAfterHint(nil); ok {
		t.Fatal("hint reported for nil error")
	}
}

func TestParseRetryAfter(t *testing.T) {
	if d := parseRetryAfter("3"); d != 3*time.Second {
		t.Fatalf("seconds form = %v, want 3s", d)
	}
	date := time.Now().Add(90 * time.Second).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(date); d < 80*time.Second || d > 91*time.Second {
		t.Fatalf("http-date form = %v, want ~90s", d)
	}
	for _, bad := range []string{"", "garbage", "-5", "Mon, 02 Jan 2006"} {
		if d := parseRetryAfter(bad); d != 0 {
			t.Fatalf("parseRetryAfter(%q) = %v, want 0", bad, d)
		}
	}
}
