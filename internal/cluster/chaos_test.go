package cluster_test

// Network chaos matrix: the netchaos layer wrapped around real shard
// servers, exercising the coordinator hardening paths the fault-grid
// tests can't reach — corrupt responses caught by the table checksum,
// duplicate delivery absorbed by idempotency keys, asymmetric (torn-ack)
// partitions resolved by keyed retries plus promotion, and hedged reads
// racing a slow primary against its replica.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"systolicdb/internal/cluster"
	"systolicdb/internal/fault"
	"systolicdb/internal/netchaos"
	"systolicdb/internal/obs"
	"systolicdb/internal/query"
	"systolicdb/internal/server"
)

// chaosWrap builds a CoordinatorOptions.WrapTransport that injects the
// given netchaos spec into every shard client, counting injections in reg.
func chaosWrap(t *testing.T, spec string, reg *obs.Registry) func(http.RoundTripper) http.RoundTripper {
	t.Helper()
	sp, err := netchaos.ParseSpec(spec)
	if err != nil {
		t.Fatalf("parsing chaos spec %q: %v", spec, err)
	}
	return func(base http.RoundTripper) http.RoundTripper {
		return netchaos.NewTransport(sp, base, reg)
	}
}

func injections(reg *obs.Registry, kind string) int64 {
	return reg.Counter("netchaos_injections_total", obs.Labels{"kind": kind}).Value()
}

// metricShard is a real single-node server whose metrics registry the
// test can read (dedup counters prove single-apply under chaos).
type metricShard struct {
	ts  *httptest.Server
	reg *obs.Registry
}

func newMetricShard(t *testing.T) *metricShard {
	t.Helper()
	reg := obs.NewRegistry()
	srv := server.New(server.Config{Metrics: reg})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &metricShard{ts: ts, reg: reg}
}

func (m *metricShard) host() string { return strings.TrimPrefix(m.ts.URL, "http://") }

func (m *metricShard) dedups(op string) int64 {
	return m.reg.Counter("server_idempotent_dedup_total", obs.Labels{"op": op}).Value()
}

// TestChaosCorruptResponsesMidGather: a corrupting network path garbles
// sub-query responses mid-gather. Every corruption must be caught (bad
// JSON or table-checksum mismatch → retryable) and retried until a clean
// copy arrives — never silently merged into the result.
func TestChaosCorruptResponsesMidGather(t *testing.T) {
	s0, s1 := newMetricShard(t), newMetricShard(t)
	reg := obs.NewRegistry()
	c := newTestCoordinator(t, []cluster.ShardSpec{{Addr: s0.ts.URL}, {Addr: s1.ts.URL}},
		cluster.CoordinatorOptions{
			PromoteAfter:  100, // corruption is the network's fault, not the shard's: stay off the ladder
			Retry:         fault.RetryPolicy{MaxAttempts: 16, BaseDelay: 1, MaxDelay: 1},
			Metrics:       reg,
			WrapTransport: chaosWrap(t, "seed=7,corrupt=0.4", reg),
		})
	putKV(t, c, "r")

	for i := 0; i < 10; i++ {
		rel, err := c.Execute(context.Background(), query.Scan{Name: "r"})
		if err != nil {
			t.Fatalf("scan %d under corruption: %v", i, err)
		}
		if rel.Cardinality() != 6 {
			t.Fatalf("scan %d gathered %d rows, want 6 — corruption leaked into a result", i, rel.Cardinality())
		}
	}
	if n := injections(reg, netchaos.KindCorrupt); n == 0 {
		t.Fatal("chaos transport never corrupted a response; test proves nothing")
	}
	for _, sh := range c.Topology() {
		if sh.Promoted || sh.Quarantined {
			t.Fatalf("network corruption escalated to the shard ladder: %+v", sh)
		}
	}
}

// TestChaosDuplicateDeliveryAppliesOnce: the network delivers every
// request twice. Keyed writes must commit exactly once per shard; the
// duplicate is acked from the dedup window.
func TestChaosDuplicateDeliveryAppliesOnce(t *testing.T) {
	s0, s1 := newMetricShard(t), newMetricShard(t)
	reg := obs.NewRegistry()
	c := newTestCoordinator(t, []cluster.ShardSpec{{Addr: s0.ts.URL}, {Addr: s1.ts.URL}},
		cluster.CoordinatorOptions{
			PromoteAfter:  100,
			Retry:         fault.RetryPolicy{MaxAttempts: 8, BaseDelay: 1, MaxDelay: 1},
			Metrics:       reg,
			WrapTransport: chaosWrap(t, "seed=3,dup=1.0", reg),
		})
	putKV(t, c, "r")

	rel, err := c.Execute(context.Background(), query.Scan{Name: "r"})
	if err != nil || rel.Cardinality() != 6 {
		t.Fatalf("scan after duplicated puts: rel=%v err=%v", rel, err)
	}
	if n := injections(reg, netchaos.KindDup); n == 0 {
		t.Fatal("chaos transport never duplicated a request; test proves nothing")
	}
	if d0, d1 := s0.dedups("put"), s1.dedups("put"); d0 == 0 || d1 == 0 {
		t.Fatalf("duplicate deliveries were not deduped (shard0=%d shard1=%d) — writes double-applied", d0, d1)
	}
}

// TestChaosAsymmetricPartitionTornAck: a one-way partition delivers every
// request to shard 0's primary but drops every response — the classic
// torn ack. The keyed retries are delivered and deduped (no double
// apply), the unacked primary walks the ladder, the replica is promoted,
// and the write is acked with zero loss.
func TestChaosAsymmetricPartitionTornAck(t *testing.T) {
	prim, repl, other := newMetricShard(t), newMetricShard(t), newMetricShard(t)
	reg := obs.NewRegistry()
	c := newTestCoordinator(t,
		[]cluster.ShardSpec{{Addr: prim.ts.URL, Replica: repl.ts.URL}, {Addr: other.ts.URL}},
		cluster.CoordinatorOptions{
			PromoteAfter:  2,
			Retry:         fault.RetryPolicy{MaxAttempts: 8, BaseDelay: 1, MaxDelay: 1},
			Metrics:       reg,
			WrapTransport: chaosWrap(t, "seed=5,partition="+prim.host()+":1h:oneway", reg),
		})

	putKV(t, c, "r") // must ack despite the torn primary

	rel, err := c.Execute(context.Background(), query.Scan{Name: "r"})
	if err != nil {
		t.Fatalf("scan after torn-ack promotion: %v", err)
	}
	if rel.Cardinality() != 6 {
		t.Fatalf("acked write lost rows under asymmetric partition: %d, want 6", rel.Cardinality())
	}

	topo := c.Topology()
	if !topo[0].Promoted || topo[0].Primary != repl.ts.URL {
		t.Fatalf("torn-ack primary was not demoted: %+v", topo[0])
	}
	if n := injections(reg, netchaos.KindPartition); n == 0 {
		t.Fatal("chaos transport never partitioned; test proves nothing")
	}
	// The one-way partition DELIVERED the retried puts to the ex-primary:
	// the first applied, the rest hit the dedup window. No double apply.
	if prim.dedups("put") == 0 {
		t.Fatal("torn-ack retries were not deduped on the partitioned primary")
	}
}

// TestChaosHedgedReadRacesReplica: a slow (not dead) primary is out-raced
// by a hedged replica read — the query returns the replica's answer long
// before the primary would have answered, without touching the ladder.
func TestChaosHedgedReadRacesReplica(t *testing.T) {
	var slow atomic.Bool
	inner := server.New(server.Config{}).Handler()
	prim := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if slow.Load() && r.URL.Path == "/query" {
			select {
			case <-time.After(500 * time.Millisecond):
			case <-r.Context().Done():
				return
			}
		}
		inner.ServeHTTP(w, r)
	}))
	defer prim.Close()
	repl, other := newMetricShard(t), newMetricShard(t)

	reg := obs.NewRegistry()
	c := newTestCoordinator(t,
		[]cluster.ShardSpec{{Addr: prim.URL, Replica: repl.ts.URL}, {Addr: other.ts.URL}},
		cluster.CoordinatorOptions{
			PromoteAfter: 3,
			HedgeAfter:   20 * time.Millisecond,
			Metrics:      reg,
		})
	putKV(t, c, "r") // dual-written: the replica can answer reads

	slow.Store(true)
	start := time.Now()
	rel, err := c.Execute(context.Background(), query.Scan{Name: "r"})
	elapsed := time.Since(start)
	if err != nil || rel.Cardinality() != 6 {
		t.Fatalf("hedged scan: rel=%v err=%v", rel, err)
	}
	if elapsed >= 450*time.Millisecond {
		t.Fatalf("hedge did not out-race the slow primary: took %v", elapsed)
	}
	if reg.Counter("cluster_hedged_requests_total", obs.Labels{"shard": "shard-0"}).Value() == 0 {
		t.Fatal("no hedge was launched")
	}
	if reg.Counter("cluster_hedge_wins_total", obs.Labels{"shard": "shard-0"}).Value() == 0 {
		t.Fatal("hedge launched but never won against a 500ms-slow primary")
	}
	for _, sh := range c.Topology() {
		if sh.Promoted || sh.Quarantined {
			t.Fatalf("a merely slow primary was escalated: %+v", sh)
		}
	}
}

// TestPartitionDuringPromotionStaleSubqueries is the promotion race: a
// storm of in-flight sub-queries is mid-air when the primary is
// partitioned away. The losers fail against the ex-primary AFTER another
// caller has promoted the replica; those stale failures must neither
// re-quarantine the slot (that would consume its last rung) nor may any
// later write reach the demoted node.
func TestPartitionDuringPromotionStaleSubqueries(t *testing.T) {
	var down atomic.Bool
	var mu sync.Mutex
	var primLog []string
	inner := server.New(server.Config{}).Handler()
	prim := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		primLog = append(primLog, r.Method+" "+r.URL.Path)
		mu.Unlock()
		if down.Load() {
			http.Error(w, `{"error":"partitioned"}`, http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer prim.Close()
	repl, other := newMetricShard(t), newMetricShard(t)

	reg := obs.NewRegistry()
	c := newTestCoordinator(t,
		[]cluster.ShardSpec{{Addr: prim.URL, Replica: repl.ts.URL}, {Addr: other.ts.URL}},
		cluster.CoordinatorOptions{
			PromoteAfter: 3,
			Retry:        fault.RetryPolicy{MaxAttempts: 16, BaseDelay: 1, MaxDelay: 1},
			Metrics:      reg,
		})
	putKV(t, c, "r")

	// Storm of concurrent readers; the partition drops mid-storm.
	const readers = 8
	var wg sync.WaitGroup
	var failed atomic.Int32
	deadline := time.Now().Add(300 * time.Millisecond)
	go func() {
		time.Sleep(30 * time.Millisecond)
		down.Store(true)
	}()
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				rel, err := c.Execute(context.Background(), query.Scan{Name: "r"})
				if err != nil {
					failed.Add(1)
					return
				}
				if rel.Cardinality() != 6 {
					failed.Add(1)
					return
				}
			}
		}()
	}
	wg.Wait()
	if n := failed.Load(); n != 0 {
		t.Fatalf("%d/%d readers failed across the partition+promotion", n, readers)
	}

	topo := c.Topology()
	if !topo[0].Promoted || topo[0].Primary != repl.ts.URL {
		t.Fatalf("partitioned primary was not demoted: %+v", topo[0])
	}
	if topo[0].Quarantined {
		t.Fatalf("stale in-flight failures re-quarantined the promoted slot: %+v", topo[0])
	}

	// Writes after the promotion must not reach the demoted node.
	mu.Lock()
	primRequests := len(primLog)
	mu.Unlock()
	putKV(t, c, "r2")
	if rel, err := c.Execute(context.Background(), query.Scan{Name: "r2"}); err != nil || rel.Cardinality() != 6 {
		t.Fatalf("post-promotion put/scan: rel=%v err=%v", rel, err)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, line := range primLog[primRequests:] {
		t.Errorf("demoted node received post-promotion request: %s", line)
	}
	for _, line := range primLog {
		if strings.Contains(line, "/relations/r2") {
			t.Errorf("demoted node received a write for r2: %s", line)
		}
	}
}
