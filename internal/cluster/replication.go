package cluster

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"systolicdb/internal/obs"
	"systolicdb/internal/relation"
)

// Applier is the durable surface a follower replays shipped records into —
// the replica daemon's own WAL-backed commit path, so the replica is
// exactly as crash-safe as its primary. key is the record's idempotency
// key ("" when unkeyed): the applier uses it to recognise a mutation it
// already committed through the coordinator's direct dual-write, so the
// same logical write arriving over both paths lands exactly once.
type Applier interface {
	ApplyPut(name, key string, rel *relation.Relation) error
	ApplyDelete(name, key string) error
	// Names lists the relations currently held, so the bootstrap resync can
	// drop leftovers the primary no longer has.
	Names() []string
}

// Follower replicates one primary: it polls the primary's GET /wal/ship
// feed and replays every record through the Applier. The cursor lives in
// memory only — after a replica restart the follower re-requests from 0,
// which either replays the whole log (puts are idempotent, deletes of
// missing names are no-ops) or triggers a full resync if the primary has
// compacted.
type Follower struct {
	client   *ShardClient
	apply    Applier
	parse    TableParser
	interval time.Duration
	reg      *obs.Registry
	seq      atomic.Uint64
}

// NewFollower builds a follower of the primary at the client's address.
// interval is the poll cadence (default 250ms).
func NewFollower(client *ShardClient, apply Applier, parse TableParser, interval time.Duration, reg *obs.Registry) *Follower {
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Follower{client: client, apply: apply, parse: parse, interval: interval, reg: reg}
}

// Seq returns the follower's replication high-water mark (the primary's
// sequence number it has fully applied).
func (f *Follower) Seq() uint64 { return f.seq.Load() }

// Run polls until ctx is cancelled. Fetch or apply errors are counted and
// retried on the next tick — a dead primary just means no progress, and a
// promoted follower's loop is simply cancelled.
func (f *Follower) Run(ctx context.Context) {
	ticker := time.NewTicker(f.interval)
	defer ticker.Stop()
	for {
		if err := f.Sync(ctx); err != nil && ctx.Err() == nil {
			f.reg.Counter("cluster_follow_errors_total", nil).Inc()
		}
		select {
		case <-ticker.C:
		case <-ctx.Done():
			return
		}
	}
}

// Sync performs one fetch-and-apply round: incremental records, or a full
// state replacement when the primary's log can no longer bridge the gap.
func (f *Follower) Sync(ctx context.Context) error {
	payload, err := f.client.Ship(ctx, f.seq.Load())
	if err != nil {
		return err
	}
	if payload.Full {
		return f.applyFull(payload)
	}
	for _, rec := range payload.Records {
		switch rec.Op {
		case "put":
			rel, err := f.parse(rec.Table)
			if err != nil {
				return fmt.Errorf("cluster: follower decoding %q @%d: %w", rec.Name, rec.Seq, err)
			}
			if err := f.apply.ApplyPut(rec.Name, rec.Key, rel); err != nil {
				return err
			}
		case "del":
			if err := f.apply.ApplyDelete(rec.Name, rec.Key); err != nil {
				return err
			}
		default:
			return fmt.Errorf("cluster: unknown ship op %q", rec.Op)
		}
		// Advance per record: a failure mid-batch resumes after the last
		// applied record, not the whole batch.
		f.seq.Store(rec.Seq)
		f.reg.Counter("cluster_follow_records_total", nil).Inc()
	}
	return nil
}

// applyFull replaces the follower's state with the primary's snapshot
// image. On the bootstrap sync (cursor still 0) local relations missing
// from the snapshot are dropped too: whatever a fresh replica holds is
// leftovers from a previous life, and the primary's image is
// authoritative. Once replication is under way the drop is skipped — the
// coordinator dual-writes every acked PUT directly to the replica, so a
// relation the snapshot lacks may be one the replica received moments
// *after* the primary's image was taken; dropping it would lose an acked
// write. Deletes still propagate: incrementally as shipped "del" records,
// and synchronously through the coordinator's dual-delete.
func (f *Follower) applyFull(payload *ShipPayload) error {
	bootstrap := f.seq.Load() == 0
	keep := make(map[string]bool, len(payload.State))
	for name, table := range payload.State {
		rel, err := f.parse(table)
		if err != nil {
			return fmt.Errorf("cluster: follower decoding snapshot %q: %w", name, err)
		}
		// Snapshot images are state, not mutations — applied unkeyed, so a
		// full resync always writes through regardless of dedup history.
		if err := f.apply.ApplyPut(name, "", rel); err != nil {
			return err
		}
		keep[name] = true
	}
	if bootstrap {
		for _, name := range f.apply.Names() {
			if !keep[name] {
				if err := f.apply.ApplyDelete(name, ""); err != nil {
					return err
				}
			}
		}
	}
	f.seq.Store(payload.Seq)
	f.reg.Counter("cluster_follow_fulls_total", nil).Inc()
	return nil
}
