package cluster

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"systolicdb/internal/machine"
	"systolicdb/internal/obs"
	"systolicdb/internal/query"
	"systolicdb/internal/relation"
)

// memShard is an in-process ShardExec: one catalog slice behind a mutex,
// executed on the real query engine. It lets the distributed executor and
// the equivalence property test run the full scatter/shuffle/gather logic
// without HTTP in the loop.
type memShard struct {
	mu      sync.Mutex
	cat     query.Catalog
	backend machine.Backend
}

func (s *memShard) snapshot() query.Catalog {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := make(query.Catalog, len(s.cat))
	for k, v := range s.cat {
		cp[k] = v
	}
	return cp
}

func (s *memShard) Query(ctx context.Context, plan string) (*relation.Relation, error) {
	n, err := query.Parse(plan)
	if err != nil {
		return nil, err
	}
	return query.ExecuteCtx(ctx, n, s.snapshot(), &query.Options{
		Metrics: obs.NewRegistry(),
		Backend: s.backend,
	})
}

func (s *memShard) PutTemp(_ context.Context, name string, rel *relation.Relation) error {
	if !strings.HasPrefix(name, "__tmp_") {
		return fmt.Errorf("memShard: refusing non-temp put %q", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cat[name] = rel
	return nil
}

func (s *memShard) DeleteTemp(_ context.Context, name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.cat, name)
	return nil
}

// tempCount reports leftover staged temporaries (should be zero after any
// Execute returns).
func (s *memShard) tempCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for k := range s.cat {
		if strings.HasPrefix(k, "__tmp_") {
			n++
		}
	}
	return n
}

// memCluster partitions every relation in base across n in-process shards
// (full-tuple hash on a fresh ring) and returns the shards plus the ring.
func memCluster(t *testing.T, n int, backend machine.Backend, base query.Catalog) ([]*memShard, *Ring) {
	t.Helper()
	ring, err := NewRing(n)
	if err != nil {
		t.Fatal(err)
	}
	shards := make([]*memShard, n)
	for i := range shards {
		shards[i] = &memShard{cat: query.Catalog{}, backend: backend}
	}
	for name, rel := range base {
		parts, err := Partition(rel, ring)
		if err != nil {
			t.Fatalf("partitioning %s: %v", name, err)
		}
		for i, p := range parts {
			shards[i].cat[name] = p
		}
	}
	return shards, ring
}

func asExecs(shards []*memShard) []ShardExec {
	out := make([]ShardExec, len(shards))
	for i, s := range shards {
		out[i] = s
	}
	return out
}
