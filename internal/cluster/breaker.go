package cluster

import (
	"sync"
	"time"
)

// breaker is a per-shard circuit breaker, the network analogue of the
// fault package's quarantine counter. Where quarantine is the ladder's
// permanent rung (K consecutive failures ⇒ stop trusting the device until
// an operator or a promotion intervenes), the breaker is the fast
// transient rung in front of it: after Threshold consecutive failures the
// circuit opens and calls fail immediately — no connection, no timeout
// spent — until a cooldown passes. Then one half-open probe is let
// through: success re-closes the circuit (a transient partition healed),
// failure re-opens it for another cooldown.
//
// Only real call outcomes feed the health accounting behind quarantine:
// open-circuit denials are fail-fast conveniences, not new evidence, so a
// partition walks the ladder at one half-open probe per cooldown while a
// burst of transient noise that trips the breaker heals on the first
// successful probe without ever threatening promotion.
type breaker struct {
	threshold int           // consecutive failures to open
	cooldown  time.Duration // open duration before a half-open probe
	now       func() time.Time

	mu       sync.Mutex
	state    breakerState
	failures int
	openedAt time.Time
	probing  bool // a half-open probe is in flight
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "closed"
}

// defaultBreakerCooldown is the open period before a half-open probe.
const defaultBreakerCooldown = 500 * time.Millisecond

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = defaultBreakerCooldown
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Allow reports whether a call may proceed. In the open state it starts
// denying immediately; once the cooldown has passed it admits exactly one
// half-open probe at a time.
func (b *breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = breakerHalfOpen
			b.probing = true
			return true
		}
		return false
	default: // half-open
		if b.probing {
			return false // one probe at a time
		}
		b.probing = true
		return true
	}
}

// Success records a successful call: the circuit closes and the failure
// count resets.
func (b *breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.failures = 0
	b.probing = false
}

// Abort releases a call admitted by Allow whose outcome carries no
// network evidence about the shard (the caller's context was canceled, or
// the shard answered with a non-retryable semantic error). It must be
// called whenever an admitted call ends without Success or Failure:
// leaving a half-open probe marked in-flight would deny every future call
// to the shard until process restart.
func (b *breaker) Abort() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
}

// Failure records a failed call, opening the circuit at the threshold. A
// failed half-open probe re-opens immediately.
func (b *breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = b.now()
		b.probing = false
	case breakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.state = breakerOpen
			b.openedAt = b.now()
		}
	}
}

// State reports the breaker's current rung for /healthz.
func (b *breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String()
}
