package cluster_test

// Failover-ladder and replication tests. These live in the external test
// package so they can use real server.Server instances as shard backends
// (server imports cluster, so an in-package test would be an import
// cycle). Failure injection wraps each shard's handler in a proxy that
// can answer 500 or play dead on demand.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"systolicdb/internal/cluster"
	"systolicdb/internal/fault"
	"systolicdb/internal/query"
	"systolicdb/internal/relation"
	"systolicdb/internal/server"
)

const kvTable = `#% types: int, int
k	v
1	10
2	20
3	30
4	40
5	50
6	60
`

// flakyShard is a real single-node server behind a failure-injecting
// proxy.
type flakyShard struct {
	ts   *httptest.Server
	fail atomic.Int32 // next N requests answer 500
	down atomic.Bool  // every request answers 500
	reqs atomic.Int32
}

func newFlakyShard(t *testing.T) *flakyShard {
	t.Helper()
	f := &flakyShard{}
	inner := server.New(server.Config{}).Handler()
	f.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f.reqs.Add(1)
		if f.down.Load() || f.fail.Add(-1) >= 0 {
			http.Error(w, `{"error":"injected shard failure"}`, http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(f.ts.Close)
	return f
}

// fastRetry keeps the ladder's backoff out of test wall-clock.
var fastRetry = fault.RetryPolicy{MaxAttempts: 4, BaseDelay: 1, MaxDelay: 1}

func newTestCoordinator(t *testing.T, specs []cluster.ShardSpec, opt cluster.CoordinatorOptions) *cluster.Coordinator {
	t.Helper()
	cat := server.NewCatalog()
	opt.Parse = func(text string) (*relation.Relation, error) {
		return cat.ParseTable(strings.NewReader(text), "")
	}
	if opt.Retry.MaxAttempts == 0 {
		opt.Retry = fastRetry
	}
	c, err := cluster.NewCoordinator(specs, opt)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func putKV(t *testing.T, c *cluster.Coordinator, name string) {
	t.Helper()
	cat := server.NewCatalog()
	rel, err := cat.ParseTable(strings.NewReader(kvTable), "")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(context.Background(), name, rel); err != nil {
		t.Fatal(err)
	}
}

func TestFailoverRetriesTransientFailure(t *testing.T) {
	s0, s1 := newFlakyShard(t), newFlakyShard(t)
	c := newTestCoordinator(t, []cluster.ShardSpec{{Addr: s0.ts.URL}, {Addr: s1.ts.URL}},
		cluster.CoordinatorOptions{PromoteAfter: 3})
	putKV(t, c, "r")

	// Two consecutive 500s stay under PromoteAfter=3: the ladder retries
	// through them and the shard is never quarantined.
	s0.fail.Store(2)
	rel, err := c.Execute(context.Background(), query.Scan{Name: "r"})
	if err != nil {
		t.Fatalf("query through transient failures: %v", err)
	}
	if rel.Cardinality() != 6 {
		t.Fatalf("gathered %d rows, want 6", rel.Cardinality())
	}
	for _, sh := range c.Topology() {
		if sh.Promoted || sh.Quarantined {
			t.Fatalf("transient failure escalated: %+v", sh)
		}
	}
}

func TestFailoverPromotesReplicaWithoutDataLoss(t *testing.T) {
	prim, repl, other := newFlakyShard(t), newFlakyShard(t), newFlakyShard(t)
	var persistMu sync.Mutex
	persisted := map[string]*relation.Relation{}
	c := newTestCoordinator(t,
		[]cluster.ShardSpec{{Addr: prim.ts.URL, Replica: repl.ts.URL}, {Addr: other.ts.URL}},
		cluster.CoordinatorOptions{
			PromoteAfter: 2,
			Retry:        fault.RetryPolicy{MaxAttempts: 8, BaseDelay: 1, MaxDelay: 1},
			Persist: func(name string, rel *relation.Relation) error {
				persistMu.Lock()
				defer persistMu.Unlock()
				persisted[name] = rel
				return nil
			},
		})
	// The PUT dual-writes shard 0's partition to primary AND replica.
	putKV(t, c, "r")

	// Kill the primary for good: the ladder fails it PromoteAfter times,
	// quarantines it, promotes the replica, and the query completes with
	// every acked row.
	prim.down.Store(true)
	rel, err := c.Execute(context.Background(), query.Scan{Name: "r"})
	if err != nil {
		t.Fatalf("query across primary loss: %v", err)
	}
	if rel.Cardinality() != 6 {
		t.Fatalf("lost acked rows: gathered %d, want 6", rel.Cardinality())
	}

	topo := c.Topology()
	if !topo[0].Promoted || topo[0].Replica != "" || topo[0].Primary != repl.ts.URL {
		t.Fatalf("shard 0 after promotion = %+v", topo[0])
	}
	if topo[0].Quarantined {
		t.Fatalf("promotion should revive the slot: %+v", topo[0])
	}
	if topo[1].Promoted {
		t.Fatalf("healthy shard promoted: %+v", topo[1])
	}
	if !c.Degraded() {
		t.Fatal("cluster should report degraded after losing failover headroom")
	}

	// The promotion was persisted through the membership relation.
	persistMu.Lock()
	members := persisted[cluster.MembershipRelationName]
	persistMu.Unlock()
	if members == nil {
		t.Fatal("membership relation never persisted")
	}
	foundPromoted := false
	for i := 0; i < members.Cardinality(); i++ {
		tup := members.Tuple(i)
		role, err := members.Schema().Col(1).Domain.DecodeString(tup[1])
		if err != nil {
			t.Fatal(err)
		}
		promoted, err := members.Schema().Col(3).Domain.DecodeBool(tup[3])
		if err != nil {
			t.Fatal(err)
		}
		if int(tup[0]) == 0 && role == "primary" && promoted {
			foundPromoted = true
		}
	}
	if !foundPromoted {
		t.Fatalf("persisted membership missing the promoted primary:\n%v", members)
	}

	// Writes keep flowing to the promoted primary.
	putKV(t, c, "r2")
	if rel, err := c.Execute(context.Background(), query.Scan{Name: "r2"}); err != nil || rel.Cardinality() != 6 {
		t.Fatalf("post-promotion put/scan: %v (rows %v)", err, rel)
	}
}

func TestFailoverQuarantineWithoutReplicaIsTerminal(t *testing.T) {
	sick, healthy := newFlakyShard(t), newFlakyShard(t)
	c := newTestCoordinator(t, []cluster.ShardSpec{{Addr: sick.ts.URL}, {Addr: healthy.ts.URL}},
		cluster.CoordinatorOptions{
			PromoteAfter: 2,
			Retry:        fault.RetryPolicy{MaxAttempts: 8, BaseDelay: 1, MaxDelay: 1},
		})
	putKV(t, c, "r")

	sick.down.Store(true)
	_, err := c.Execute(context.Background(), query.Scan{Name: "r"})
	if err == nil || !strings.Contains(err.Error(), "quarantined") {
		t.Fatalf("unreplicated dead shard: err = %v, want quarantine", err)
	}

	// The quarantine is sticky: the next call fails immediately on the
	// terminal rung without touching the shard again.
	before := sick.reqs.Load()
	_, err = c.Execute(context.Background(), query.Scan{Name: "r"})
	if err == nil || !strings.Contains(err.Error(), "no replica left") {
		t.Fatalf("quarantined shard: err = %v, want terminal", err)
	}
	if sick.reqs.Load() != before {
		t.Fatalf("terminal rung still sent %d requests to the quarantined shard", sick.reqs.Load()-before)
	}
}

func TestPutRequiresReplicaAck(t *testing.T) {
	prim, repl := newFlakyShard(t), newFlakyShard(t)
	c := newTestCoordinator(t, []cluster.ShardSpec{{Addr: prim.ts.URL, Replica: repl.ts.URL}},
		cluster.CoordinatorOptions{})

	// A dead replica must fail the whole Put: acking with only one copy
	// would let a later promotion lose the write.
	repl.down.Store(true)
	cat := server.NewCatalog()
	rel, err := cat.ParseTable(strings.NewReader(kvTable), "")
	if err != nil {
		t.Fatal(err)
	}
	err = c.Put(context.Background(), "r", rel)
	if err == nil || !strings.Contains(err.Error(), "not acked") {
		t.Fatalf("put with dead replica: err = %v, want replica-ack failure", err)
	}
}

func TestNonRetryableErrorFailsFast(t *testing.T) {
	s0 := newFlakyShard(t)
	c := newTestCoordinator(t, []cluster.ShardSpec{{Addr: s0.ts.URL}}, cluster.CoordinatorOptions{})
	putKV(t, c, "r")

	// A malformed sub-query is the caller's fault (4xx): no retries, no
	// quarantine.
	before := s0.reqs.Load()
	_, err := c.Execute(context.Background(), query.Scan{Name: "no_such_relation"})
	if err == nil {
		t.Fatal("scan of unknown relation should fail")
	}
	if got := s0.reqs.Load() - before; got != 1 {
		t.Fatalf("non-retryable failure hit the shard %d times, want 1", got)
	}
	if c.Topology()[0].Quarantined {
		t.Fatal("caller mistake quarantined the shard")
	}
}

func TestParseShardSpecs(t *testing.T) {
	specs, err := cluster.ParseShardSpecs(" 127.0.0.1:7001 = 127.0.0.1:7101 , 127.0.0.1:7002 ,")
	if err != nil {
		t.Fatal(err)
	}
	want := []cluster.ShardSpec{
		{Addr: "127.0.0.1:7001", Replica: "127.0.0.1:7101"},
		{Addr: "127.0.0.1:7002"},
	}
	if len(specs) != len(want) || specs[0] != want[0] || specs[1] != want[1] {
		t.Fatalf("parsed %+v, want %+v", specs, want)
	}
	for _, bad := range []string{"", " , ", "=replica.only"} {
		if _, err := cluster.ParseShardSpecs(bad); err == nil {
			t.Fatalf("ParseShardSpecs(%q) should fail", bad)
		}
	}
}

func TestMembershipRelationEncodesTopology(t *testing.T) {
	rel, err := cluster.MembershipRelation([]cluster.ShardInfo{
		{ID: 0, Primary: "http://a", Replica: "http://b"},
		{ID: 1, Primary: "http://c", Promoted: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	// One row per (shard, role, addr): shard 0 has two, shard 1 one.
	if rel.Cardinality() != 3 {
		t.Fatalf("membership has %d rows, want 3", rel.Cardinality())
	}
	roles := map[string]int{}
	for i := 0; i < rel.Cardinality(); i++ {
		role, err := rel.Schema().Col(1).Domain.DecodeString(rel.Tuple(i)[1])
		if err != nil {
			t.Fatal(err)
		}
		roles[role]++
	}
	if roles["primary"] != 2 || roles["replica"] != 1 {
		t.Fatalf("membership roles = %v", roles)
	}
}

func TestReconcileMembershipReplaysPromotion(t *testing.T) {
	prim, repl := newFlakyShard(t), newFlakyShard(t)
	specs := []cluster.ShardSpec{{Addr: prim.ts.URL, Replica: repl.ts.URL}}

	// A previous run promoted the replica; its persisted shard map says
	// the primary is now the replica's address.
	recovered, err := cluster.MembershipRelation([]cluster.ShardInfo{
		{ID: 0, Primary: repl.ts.URL, Promoted: true},
	})
	if err != nil {
		t.Fatal(err)
	}

	c := newTestCoordinator(t, specs, cluster.CoordinatorOptions{})
	if err := c.ReconcileMembership(recovered); err != nil {
		t.Fatal(err)
	}
	topo := c.Topology()
	if !topo[0].Promoted || topo[0].Primary != repl.ts.URL || topo[0].Replica != "" {
		t.Fatalf("restart did not replay the promotion: %+v", topo[0])
	}

	// A shard map matching the configured topology changes nothing.
	c2 := newTestCoordinator(t, specs, cluster.CoordinatorOptions{})
	unchanged, err := cluster.MembershipRelation(c2.Topology())
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.ReconcileMembership(unchanged); err != nil {
		t.Fatal(err)
	}
	if topo := c2.Topology(); topo[0].Promoted || topo[0].Primary != prim.ts.URL {
		t.Fatalf("matching shard map mutated topology: %+v", topo[0])
	}

	if err := c2.ReconcileMembership(nil); err == nil {
		t.Fatal("ReconcileMembership(nil) should fail")
	}
}

func TestRestoreDirectory(t *testing.T) {
	s0 := newFlakyShard(t)
	var persistMu sync.Mutex
	persisted := map[string]*relation.Relation{}
	c := newTestCoordinator(t, []cluster.ShardSpec{{Addr: s0.ts.URL}}, cluster.CoordinatorOptions{
		Persist: func(name string, rel *relation.Relation) error {
			persistMu.Lock()
			defer persistMu.Unlock()
			persisted[name] = rel
			return nil
		},
	})
	putKV(t, c, "r")

	persistMu.Lock()
	dir := persisted[cluster.RelationsRelationName]
	persistMu.Unlock()
	if dir == nil {
		t.Fatal("relation directory never persisted")
	}

	// A second coordinator (fresh restart) restores the directory — the
	// width oracle and row counts — from the persisted relation.
	c2 := newTestCoordinator(t, []cluster.ShardSpec{{Addr: s0.ts.URL}}, cluster.CoordinatorOptions{})
	if _, ok := c2.Rows("r"); ok {
		t.Fatal("fresh coordinator should not know r yet")
	}
	if err := c2.RestoreDirectory(dir); err != nil {
		t.Fatal(err)
	}
	if rows, ok := c2.Rows("r"); !ok || rows != 6 {
		t.Fatalf("restored rows(r) = %d, %v; want 6, true", rows, ok)
	}
	if names := c2.Names(); len(names) != 1 || names[0] != "r" {
		t.Fatalf("restored names = %v", names)
	}
	if err := c2.RestoreDirectory(nil); err == nil {
		t.Fatal("RestoreDirectory(nil) should fail")
	}
}

func TestRecoveryOrderPreservesDirectory(t *testing.T) {
	// Boot-order regression: ReconcileMembership re-persists the whole
	// coordinator state whenever the recovered shard map differs from the
	// configured topology — including the "keep the promoted mark" case
	// where the operator restarts with the promoted replica as the sole
	// primary. If that persist runs before RestoreDirectory, it commits an
	// empty relation directory over the recovered one and every
	// previously-acked relation becomes "unknown" after restart.
	prim, repl := newFlakyShard(t), newFlakyShard(t)
	var persistMu sync.Mutex
	persisted := map[string]*relation.Relation{}
	persist := func(name string, rel *relation.Relation) error {
		persistMu.Lock()
		defer persistMu.Unlock()
		persisted[name] = rel
		return nil
	}

	c := newTestCoordinator(t, []cluster.ShardSpec{{Addr: prim.ts.URL, Replica: repl.ts.URL}},
		cluster.CoordinatorOptions{Persist: persist})
	putKV(t, c, "r")

	// A previous run promoted the replica and then crashed; the operator
	// restarts the coordinator with the ex-replica as shard 0's only node.
	membership, err := cluster.MembershipRelation([]cluster.ShardInfo{
		{ID: 0, Primary: repl.ts.URL, Promoted: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	persistMu.Lock()
	dir := persisted[cluster.RelationsRelationName]
	persistMu.Unlock()
	if dir == nil || dir.Cardinality() == 0 {
		t.Fatal("relation directory never persisted")
	}

	c2 := newTestCoordinator(t, []cluster.ShardSpec{{Addr: repl.ts.URL}},
		cluster.CoordinatorOptions{Persist: persist})
	// The documented boot order: directory first, then shard map.
	if err := c2.RestoreDirectory(dir); err != nil {
		t.Fatal(err)
	}
	if err := c2.ReconcileMembership(membership); err != nil {
		t.Fatal(err)
	}

	if topo := c2.Topology(); !topo[0].Promoted || topo[0].Primary != repl.ts.URL {
		t.Fatalf("promoted mark lost across restart: %+v", topo[0])
	}
	if rows, ok := c2.Rows("r"); !ok || rows != 6 {
		t.Fatalf("restored rows(r) = %d, %v; want 6, true", rows, ok)
	}
	// The reconcile above re-persisted state (the topology changed); the
	// directory it wrote must still describe r, not be empty.
	persistMu.Lock()
	dir2 := persisted[cluster.RelationsRelationName]
	persistMu.Unlock()
	if dir2 == nil || dir2.Cardinality() == 0 {
		t.Fatal("reconcile clobbered the restored relation directory with an empty one")
	}
}

// mapApplier is an in-memory Applier for follower tests. It honours
// idempotency keys the way a real shard does: a key already applied is
// acked without re-applying.
type mapApplier struct {
	mu   sync.Mutex
	rels map[string]*relation.Relation
	keys map[string]bool
}

func newMapApplier() *mapApplier {
	return &mapApplier{rels: map[string]*relation.Relation{}, keys: map[string]bool{}}
}

func (m *mapApplier) ApplyPut(name, key string, rel *relation.Relation) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if key != "" {
		if m.keys[key] {
			return nil
		}
		m.keys[key] = true
	}
	m.rels[name] = rel
	return nil
}

func (m *mapApplier) ApplyDelete(name, key string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if key != "" {
		if m.keys[key] {
			return nil
		}
		m.keys[key] = true
	}
	delete(m.rels, name)
	return nil
}

func (m *mapApplier) Names() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.rels))
	for n := range m.rels {
		out = append(out, n)
	}
	return out
}

func (m *mapApplier) get(name string) (*relation.Relation, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.rels[name]
	return r, ok
}

func TestFollowerFullResync(t *testing.T) {
	// A primary whose log can't bridge the gap answers full:true with a
	// state snapshot; the follower must converge to exactly that state,
	// dropping relations the primary no longer has.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/wal/ship" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"seq":42,"full":true,"state":{"a":` + jsonString(kvTable) + `,"b":` + jsonString(kvTable) + `}}`))
	}))
	defer ts.Close()

	cat := server.NewCatalog()
	parse := func(text string) (*relation.Relation, error) {
		return cat.ParseTable(strings.NewReader(text), "")
	}
	apply := newMapApplier()
	stale, err := parse(kvTable)
	if err != nil {
		t.Fatal(err)
	}
	_ = apply.ApplyPut("stale", "", stale)

	f := cluster.NewFollower(cluster.NewShardClient(ts.URL, parse, cluster.ClientOptions{}), apply, parse, 0, nil)
	if err := f.Sync(context.Background()); err != nil {
		t.Fatal(err)
	}
	if f.Seq() != 42 {
		t.Fatalf("seq after full resync = %d, want 42", f.Seq())
	}
	for _, name := range []string{"a", "b"} {
		if rel, ok := apply.get(name); !ok || rel.Cardinality() != 6 {
			t.Fatalf("resynced relation %q missing or wrong size", name)
		}
	}
	if _, ok := apply.get("stale"); ok {
		t.Fatal("full resync kept a relation the primary no longer has")
	}
}

func jsonString(s string) string {
	b := new(strings.Builder)
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		case '"':
			b.WriteString(`\"`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}
