package cluster

import (
	"fmt"
	"strings"

	"systolicdb/internal/relation"
)

// MembershipRelationName is the reserved catalog name the coordinator
// persists its shard map under. It goes through the ordinary durable
// commit path (WAL append before publish), so a coordinator restart
// recovers the topology — including any promotions — from its own log.
const MembershipRelationName = "__cluster_shards"

// ShardSpec is one shard's addressing: the primary daemon and an optional
// replica following the primary's WAL.
type ShardSpec struct {
	Addr    string
	Replica string // "" = unreplicated
}

// ParseShardSpecs parses the -shards flag syntax:
//
//	addr[=replica],addr[=replica],...
//
// e.g. "127.0.0.1:7001=127.0.0.1:7101,127.0.0.1:7002". Shard order is
// position on the ring, so the list must be identical on every
// coordinator start.
func ParseShardSpecs(s string) ([]ShardSpec, error) {
	var specs []ShardSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		addr, replica, _ := strings.Cut(part, "=")
		addr, replica = strings.TrimSpace(addr), strings.TrimSpace(replica)
		if addr == "" {
			return nil, fmt.Errorf("cluster: empty shard address in %q", s)
		}
		specs = append(specs, ShardSpec{Addr: addr, Replica: replica})
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("cluster: no shards in %q", s)
	}
	return specs, nil
}

// membership relation schema: (shard int, role dict, addr dict, promoted bool).
func membershipSchema() (*relation.Schema, error) {
	return relation.NewSchema(
		relation.Column{Name: "shard", Domain: relation.IntDomain("cluster.shard")},
		relation.Column{Name: "role", Domain: relation.DictDomain("cluster.role")},
		relation.Column{Name: "addr", Domain: relation.DictDomain("cluster.addr")},
		relation.Column{Name: "promoted", Domain: relation.BoolDomain("cluster.promoted")},
	)
}

// MembershipRelation encodes the current topology as a relation — one row
// per (shard, role, address) — ready for the durable commit path.
// promoted marks shards whose listed primary is a promoted ex-replica.
func MembershipRelation(topo []ShardInfo) (*relation.Relation, error) {
	schema, err := membershipSchema()
	if err != nil {
		return nil, err
	}
	var tuples []relation.Tuple
	addRow := func(shard int, role, addr string, promoted bool) error {
		if addr == "" {
			return nil
		}
		r, err := schema.Col(1).Domain.EncodeString(role)
		if err != nil {
			return err
		}
		a, err := schema.Col(2).Domain.EncodeString(addr)
		if err != nil {
			return err
		}
		p, err := schema.Col(3).Domain.EncodeBool(promoted)
		if err != nil {
			return err
		}
		tuples = append(tuples, relation.Tuple{relation.Element(shard), r, a, p})
		return nil
	}
	for _, s := range topo {
		if err := addRow(s.ID, "primary", s.Primary, s.Promoted); err != nil {
			return nil, err
		}
		if err := addRow(s.ID, "replica", s.Replica, false); err != nil {
			return nil, err
		}
	}
	return relation.NewRelation(schema, tuples)
}
