package cluster

import (
	"systolicdb/internal/query"
)

// Part describes how a sub-plan's per-shard results relate to the
// single-node result of the same plan — the invariant the gather step
// relies on. The lattice mirrors what internal/decompose proves tile by
// tile, lifted to shard granularity:
//
//   - PartAligned: shard i's result is exactly the slice of the global
//     result whose tuples hash to shard i (full-tuple hash, same ring).
//     Equal tuples are colocated, multiplicities are exact: concatenation
//     reassembles the global result as a multiset. Closed under the
//     set operators, because PUT-time partitioning colocates every copy
//     of a tuple (§3's tuple-equality comparisons never need to cross a
//     shard).
//
//   - PartDisjoint: each global result tuple *instance* is produced by
//     exactly one shard (concat is multiset-exact) but residency no longer
//     follows the tuple hash — e.g. a broadcast join's outputs live where
//     the probe side lived. Concat still gathers exactly; further
//     scattering of tuple-colocating operators on top would be unsound.
//
//   - PartOverlap: shards may produce the same result tuple independently
//     (a projection maps two differently-hashed tuples to one image), so
//     the gather point must remove duplicates. Sound only for operators
//     whose single-node semantics are duplicate-free (project, dedup,
//     union), which is exactly when the engine's §5 triangle mask would
//     have removed them anyway.
//
//   - PartNone: the plan does not decompose under the current
//     partitioning; the coordinator must evaluate it by other means
//     (broadcast, re-shuffle, or gathering children and running the
//     operator locally).
type Part int

const (
	PartNone Part = iota
	PartAligned
	PartDisjoint
	PartOverlap
)

func (p Part) String() string {
	switch p {
	case PartAligned:
		return "aligned"
	case PartDisjoint:
		return "disjoint"
	case PartOverlap:
		return "overlap"
	}
	return "none"
}

// Scatterable reports whether a plan with this classification may be
// shipped whole to every shard and gathered (concat, plus dedup for
// PartOverlap).
func (p Part) Scatterable() bool { return p != PartNone }

// Classify computes the partition property of a plan evaluated shard-
// locally, assuming every base relation (Scan) is partitioned by
// full-tuple hash on one shared ring.
//
// Join and Divide always classify PartNone here: they are handled by the
// executor's broadcast/shuffle strategies, not by whole-plan scatter.
func Classify(n query.Node) Part {
	switch op := n.(type) {
	case query.Scan:
		return PartAligned
	case query.Select:
		// A row filter keeps each surviving tuple where it was.
		return Classify(op.Child)
	case query.Intersect:
		return alignedOnly(Classify(op.L), Classify(op.R))
	case query.Difference:
		return alignedOnly(Classify(op.L), Classify(op.R))
	case query.Union:
		// Union removes duplicates (§5), so set semantics tolerate
		// cross-shard copies: any scatterable pair gathers with dedup.
		l, r := Classify(op.L), Classify(op.R)
		if l == PartAligned && r == PartAligned {
			return PartAligned
		}
		if l.Scatterable() && r.Scatterable() {
			return PartOverlap
		}
		return PartNone
	case query.Dedup:
		switch Classify(op.Child) {
		case PartAligned:
			return PartAligned
		case PartDisjoint, PartOverlap:
			return PartOverlap
		}
		return PartNone
	case query.Project:
		// Projection re-maps tuples, so images of tuples from different
		// shards may collide: duplicate-free semantics, dedup at gather.
		if Classify(op.Child).Scatterable() {
			return PartOverlap
		}
		return PartNone
	}
	return PartNone
}

// alignedOnly: intersection and difference compare tuple multisets, so
// both inputs must have exact per-shard multiplicity AND colocated equal
// tuples — anything less and a matching pair could straddle shards.
func alignedOnly(l, r Part) Part {
	if l == PartAligned && r == PartAligned {
		return PartAligned
	}
	return PartNone
}
