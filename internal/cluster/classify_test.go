package cluster

import (
	"testing"

	"systolicdb/internal/query"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		plan string
		want Part
	}{
		{"scan(A)", PartAligned},
		{"select(scan(A),0<5)", PartAligned},
		{"intersect(scan(A),scan(B))", PartAligned},
		{"difference(scan(A),scan(B))", PartAligned},
		{"union(scan(A),scan(B))", PartAligned},
		{"dedup(scan(A))", PartAligned},
		{"dedup(intersect(scan(A),scan(B)))", PartAligned},
		{"select(difference(scan(A),scan(B)),1>3)", PartAligned},

		// Projection may collide images across shards: gather must dedup.
		{"project(scan(A),0)", PartOverlap},
		{"dedup(project(scan(A),0,1))", PartOverlap},
		{"select(project(scan(A),0),0<5)", PartOverlap},
		{"union(project(scan(A),0),project(scan(B),0))", PartOverlap},
		{"union(scan(A),project(scan(B),0,1))", PartOverlap},

		// Multiset comparisons under a projected (non-aligned) input no
		// longer colocate matching pairs: not scatterable as a whole plan.
		{"intersect(project(scan(A),0),scan(B))", PartNone},
		{"difference(scan(A),project(scan(B),0,1))", PartNone},

		// Joins and division never whole-plan scatter; the executor owns
		// their broadcast/shuffle strategies.
		{"join(scan(A),scan(B),0=0)", PartNone},
		{"theta(scan(A),scan(B),0<1)", PartNone},
		{"divide(scan(A),scan(B),quot=0,div=1,by=0)", PartNone},
		{"project(join(scan(A),scan(B),0=0),0)", PartNone},
		{"dedup(divide(scan(A),scan(B),quot=0,div=1,by=0))", PartNone},
	}
	for _, c := range cases {
		n, err := query.Parse(c.plan)
		if err != nil {
			t.Fatalf("parse %q: %v", c.plan, err)
		}
		if got := Classify(n); got != c.want {
			t.Errorf("Classify(%q) = %v, want %v", c.plan, got, c.want)
		}
	}
}

func TestPartScatterable(t *testing.T) {
	for p, want := range map[Part]bool{PartNone: false, PartAligned: true, PartDisjoint: true, PartOverlap: true} {
		if p.Scatterable() != want {
			t.Errorf("%v.Scatterable() = %v, want %v", p, !want, want)
		}
	}
}
