package cluster

import (
	"testing"
	"time"
)

// fakeClock drives a breaker through time without sleeping.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func testBreaker(threshold int, cooldown time.Duration) (*breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b := newBreaker(threshold, cooldown)
	b.now = clk.now
	return b, clk
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	b, _ := testBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker denied call %d", i)
		}
		b.Failure()
	}
	if b.State() != "closed" {
		t.Fatalf("state after 2/3 failures = %s, want closed", b.State())
	}
	b.Failure() // third consecutive failure opens the circuit
	if b.State() != "open" {
		t.Fatalf("state after threshold failures = %s, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a call inside the cooldown")
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	b, _ := testBreaker(3, time.Second)
	b.Failure()
	b.Failure()
	b.Success() // breaks the consecutive run
	b.Failure()
	b.Failure()
	if b.State() != "closed" {
		t.Fatalf("non-consecutive failures opened the circuit: %s", b.State())
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b, clk := testBreaker(1, time.Second)
	b.Failure()
	if b.State() != "open" {
		t.Fatalf("state = %s, want open", b.State())
	}

	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but probe was denied")
	}
	if b.State() != "half-open" {
		t.Fatalf("state during probe = %s, want half-open", b.State())
	}
	// Only one probe at a time: a concurrent caller is still denied.
	if b.Allow() {
		t.Fatal("second probe admitted while the first is in flight")
	}

	// Probe succeeds: the circuit closes and stays closed.
	b.Success()
	if b.State() != "closed" || !b.Allow() {
		t.Fatalf("successful probe did not re-close the circuit (state %s)", b.State())
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	b, clk := testBreaker(1, time.Second)
	b.Failure()
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe denied after cooldown")
	}
	b.Failure() // the probe failed
	if b.State() != "open" {
		t.Fatalf("state after failed probe = %s, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("re-opened breaker allowed a call before the next cooldown")
	}
	// The re-open restarted the cooldown clock.
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe denied after the second cooldown")
	}
}
