package cluster

import (
	"context"
	"errors"
	"strings"
	"testing"

	"systolicdb/internal/machine"
	"systolicdb/internal/obs"
	"systolicdb/internal/query"
	"systolicdb/internal/relation"
	"systolicdb/internal/workload"
)

// execBoth runs plan through a fresh memCluster engine and single-node,
// returning (distributed, singleNode).
func execBoth(t *testing.T, shards int, base query.Catalog, plan string, opt ExecOptions) (*relation.Relation, *relation.Relation, []*memShard, *obs.Registry) {
	t.Helper()
	n, err := query.Parse(plan)
	if err != nil {
		t.Fatalf("parse %q: %v", plan, err)
	}
	reg := obs.NewRegistry()
	opt.Metrics = reg
	ms, ring := memCluster(t, shards, opt.Backend, base)
	eng, err := NewEngine(asExecs(ms), ring, opt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.Execute(context.Background(), n)
	if err != nil {
		t.Fatalf("distributed %q: %v", plan, err)
	}
	want, err := query.ExecuteCtx(context.Background(), n, base, &query.Options{
		Metrics: obs.NewRegistry(), Backend: opt.Backend,
	})
	if err != nil {
		t.Fatalf("single-node %q: %v", plan, err)
	}
	return got, want, ms, reg
}

func requireEqual(t *testing.T, plan string, got, want *relation.Relation) {
	t.Helper()
	if !got.EqualAsMultiset(want) {
		t.Fatalf("%q: distributed result (%d rows) != single-node (%d rows)",
			plan, got.Cardinality(), want.Cardinality())
	}
}

func requireNoTemps(t *testing.T, ms []*memShard) {
	t.Helper()
	for i, s := range ms {
		if n := s.tempCount(); n != 0 {
			t.Fatalf("shard %d leaked %d staged temporaries", i, n)
		}
	}
}

func joinBase(t *testing.T, seed int64, n, m int) query.Catalog {
	t.Helper()
	a, b, err := workload.JoinPair(seed, n, n, m, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	return query.Catalog{"j1": a, "j2": b}
}

func TestExecuteScatterOps(t *testing.T) {
	a, b, err := workload.OverlapPair(9, 200, 2, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	d, err := workload.WithDuplicates(9, 150, 2, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	base := query.Catalog{"a": a, "b": b, "d": d}
	plans := []string{
		"scan(a)",
		"select(scan(d),0<500)",
		"intersect(scan(a),scan(b))",
		"difference(scan(a),scan(b))",
		"union(scan(a),scan(b))",
		"dedup(scan(d))",
		"project(scan(a),1)",
		"project(scan(d),0)",
		"dedup(union(scan(a),scan(b)))",
	}
	for _, plan := range plans {
		got, want, ms, _ := execBoth(t, 4, base, plan, ExecOptions{})
		requireEqual(t, plan, got, want)
		requireNoTemps(t, ms)
	}
}

func TestExecuteJoinBroadcast(t *testing.T) {
	base := joinBase(t, 21, 120, 2)
	plan := "join(scan(j1),scan(j2),0=0)"
	got, want, ms, reg := execBoth(t, 3, base, plan, ExecOptions{BroadcastLimit: 10_000})
	requireEqual(t, plan, got, want)
	requireNoTemps(t, ms)
	if reg.Counter("cluster_join_strategy_total", obs.Labels{"strategy": "broadcast"}).Value() != 1 {
		t.Fatal("expected the broadcast strategy")
	}
}

func TestExecuteJoinShuffle(t *testing.T) {
	base := joinBase(t, 22, 150, 2)
	plan := "join(scan(j1),scan(j2),0=0)"
	// BroadcastLimit 1 forces co-partitioning of both sides.
	got, want, ms, reg := execBoth(t, 4, base, plan, ExecOptions{BroadcastLimit: 1})
	requireEqual(t, plan, got, want)
	requireNoTemps(t, ms)
	if reg.Counter("cluster_join_strategy_total", obs.Labels{"strategy": "shuffle"}).Value() != 1 {
		t.Fatal("expected the shuffle strategy")
	}
}

func TestExecuteJoinCopartitionedFastPath(t *testing.T) {
	// Width-1 relations joined on column 0: the join key IS the whole
	// tuple, so PUT-time partitioning already co-partitioned both sides
	// and nothing should be staged.
	base := joinBase(t, 23, 200, 1)
	widths := map[string]int{"j1": 1, "j2": 1}
	plan := "join(scan(j1),scan(j2),0=0)"
	got, want, ms, reg := execBoth(t, 4, base, plan, ExecOptions{
		BroadcastLimit: 1, // would shuffle without the fast path
		Width:          func(name string) (int, bool) { w, ok := widths[name]; return w, ok },
	})
	requireEqual(t, plan, got, want)
	requireNoTemps(t, ms)
	if reg.Counter("cluster_join_strategy_total", obs.Labels{"strategy": "copartitioned"}).Value() != 1 {
		t.Fatal("expected the co-partitioned fast path")
	}
	if reg.Counter("cluster_shuffle_rows_total", nil).Value() != 0 {
		t.Fatal("fast path should move zero rows")
	}
}

func TestExecuteThetaJoin(t *testing.T) {
	base := joinBase(t, 24, 60, 2)
	plan := "theta(scan(j1),scan(j2),0<0)"
	// Theta joins must broadcast even past the limit: no key to shuffle on.
	got, want, ms, reg := execBoth(t, 3, base, plan, ExecOptions{BroadcastLimit: 1})
	requireEqual(t, plan, got, want)
	requireNoTemps(t, ms)
	if reg.Counter("cluster_join_strategy_total", obs.Labels{"strategy": "broadcast"}).Value() != 1 {
		t.Fatal("theta join should broadcast")
	}
}

func TestExecuteJoinWrapperPushdown(t *testing.T) {
	base := joinBase(t, 25, 100, 2)
	for _, plan := range []string{
		"project(join(scan(j1),scan(j2),0=0),0,1)",
		"dedup(join(scan(j1),scan(j2),0=0))",
		"select(join(scan(j1),scan(j2),0=0),0<40)",
		"project(select(join(scan(j1),scan(j2),0=0),0<40),2)",
	} {
		got, want, ms, reg := execBoth(t, 3, base, plan, ExecOptions{})
		requireEqual(t, plan, got, want)
		requireNoTemps(t, ms)
		// The wrapper must ride along in the scattered sub-plan, not run
		// as a coordinator-local fallback.
		if reg.Counter("cluster_local_fallback_total", obs.Labels{"op": "project"}).Value() != 0 ||
			reg.Counter("cluster_local_fallback_total", obs.Labels{"op": "dedup"}).Value() != 0 ||
			reg.Counter("cluster_local_fallback_total", obs.Labels{"op": "select"}).Value() != 0 {
			t.Fatalf("%q: wrapper fell back to local execution", plan)
		}
	}
}

func TestExecuteJoinWithDerivedProbeSide(t *testing.T) {
	base := joinBase(t, 26, 120, 2)
	// The probe side is a projection (PartOverlap), so it must be
	// materialized and re-partitioned before the join can scatter.
	plan := "join(project(scan(j1),0,1),scan(j2),0=0)"
	got, want, ms, _ := execBoth(t, 4, base, plan, ExecOptions{})
	requireEqual(t, plan, got, want)
	requireNoTemps(t, ms)
}

func TestExecuteDivision(t *testing.T) {
	for _, shards := range []int{1, 3, 5} {
		a, b, err := workload.DivisionCase(31, 40, 6, 0.4)
		if err != nil {
			t.Fatal(err)
		}
		base := query.Catalog{"v1": a, "v2": b}
		plan := "divide(scan(v1),scan(v2),quot=0,div=1,by=0)"
		got, want, ms, _ := execBoth(t, shards, base, plan, ExecOptions{})
		requireEqual(t, plan, got, want)
		requireNoTemps(t, ms)
	}
}

func TestExecuteLocalFallback(t *testing.T) {
	a, b, err := workload.OverlapPair(41, 120, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	base := query.Catalog{"a": a, "b": b}
	// Intersection of projections: matching pairs straddle shards, so the
	// top operator must run at the coordinator over gathered children.
	plan := "intersect(project(scan(a),0),project(scan(b),0))"
	got, want, ms, reg := execBoth(t, 4, base, plan, ExecOptions{})
	requireEqual(t, plan, got, want)
	requireNoTemps(t, ms)
	if reg.Counter("cluster_local_fallback_total", obs.Labels{"op": "intersect"}).Value() != 1 {
		t.Fatal("expected a coordinator-local intersect")
	}
}

func TestExecuteSingleShardDegenerate(t *testing.T) {
	base := joinBase(t, 51, 80, 2)
	for _, plan := range []string{
		"join(scan(j1),scan(j2),0=0)",
		"union(scan(j1),scan(j2))",
	} {
		got, want, ms, _ := execBoth(t, 1, base, plan, ExecOptions{})
		requireEqual(t, plan, got, want)
		requireNoTemps(t, ms)
	}
}

// failShard wraps a ShardExec and fails every call.
type failShard struct{}

func (failShard) Query(context.Context, string) (*relation.Relation, error) {
	return nil, errors.New("shard down")
}
func (failShard) PutTemp(context.Context, string, *relation.Relation) error {
	return errors.New("shard down")
}
func (failShard) DeleteTemp(context.Context, string) error { return errors.New("shard down") }

func TestExecuteShardFailurePropagates(t *testing.T) {
	a, err := workload.Uniform(61, 50, 2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	ms, ring := memCluster(t, 3, machine.BackendPulse, query.Catalog{"a": a})
	execs := asExecs(ms)
	execs[1] = failShard{}
	eng, err := NewEngine(execs, ring, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	n, _ := query.Parse("dedup(scan(a))")
	if _, err := eng.Execute(context.Background(), n); err == nil {
		t.Fatal("engine should surface a failed shard")
	} else if got := err.Error(); !strings.Contains(got, "shard 1") || !strings.Contains(got, "shard down") {
		t.Fatalf("error should identify the shard: %v", err)
	}
}

func TestExecuteCancelledContext(t *testing.T) {
	a, err := workload.Uniform(62, 50, 2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	ms, ring := memCluster(t, 2, machine.BackendPulse, query.Catalog{"a": a})
	eng, err := NewEngine(asExecs(ms), ring, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n, _ := query.Parse("scan(a)")
	if _, err := eng.Execute(ctx, n); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestNewEngineValidation(t *testing.T) {
	ring, _ := NewRing(2)
	if _, err := NewEngine(nil, ring, ExecOptions{}); err == nil {
		t.Fatal("no shards should fail")
	}
	if _, err := NewEngine([]ShardExec{failShard{}}, ring, ExecOptions{}); err == nil {
		t.Fatal("ring/shard mismatch should fail")
	}
}

// TestGatherDedupSkip pins the gather-merge optimization: a Dedup wrapper
// over a distributed join or division yields per-shard partials that are
// already globally disjoint (every strategy colocates equal output
// tuples), so the coordinator concatenates without a second dedup — and
// counts the skip. A Project wrapper can collapse distinct tuples into
// colliding images across shards, so it must NOT skip. Equivalence against
// single-node execution is asserted for every strategy.
func TestGatherDedupSkip(t *testing.T) {
	skips := func(reg *obs.Registry) int64 {
		return reg.Counter("cluster_gather_dedup_skipped_total", nil).Value()
	}
	base := joinBase(t, 31, 120, 2)
	// The theta case runs on a smaller pair: its output is quadratic and
	// the single-node reference dedups it on a simulated O(n^2) array.
	small := joinBase(t, 33, 30, 2)
	cases := []struct {
		name     string
		base     query.Catalog
		plan     string
		opt      ExecOptions
		wantSkip bool
	}{
		{"broadcast", base, "dedup(join(scan(j1),scan(j2),0=0))", ExecOptions{BroadcastLimit: 10_000}, true},
		{"shuffle", base, "dedup(join(scan(j1),scan(j2),0=0))", ExecOptions{BroadcastLimit: 1}, true},
		{"theta", small, "dedup(theta(scan(j1),scan(j2),0<0))", ExecOptions{BroadcastLimit: 1}, true},
		{"select-dedup", base, "select(dedup(join(scan(j1),scan(j2),0=0)),0<40)", ExecOptions{}, true},
		// Project maps distinct join outputs to possibly-equal images on
		// different shards: the gather must still dedup.
		{"project", base, "project(join(scan(j1),scan(j2),0=0),1)", ExecOptions{}, false},
		{"project-over-dedup", base, "project(dedup(join(scan(j1),scan(j2),0=0)),1)", ExecOptions{}, false},
	}
	for _, c := range cases {
		got, want, ms, reg := execBoth(t, 4, c.base, c.plan, c.opt)
		requireEqual(t, c.plan, got, want)
		requireNoTemps(t, ms)
		if skipped := skips(reg) > 0; skipped != c.wantSkip {
			t.Errorf("%s: dedup skip counter %d, want skipped=%v", c.name, skips(reg), c.wantSkip)
		}
	}

	// Division with a dedup wrapper: quotient groups are shuffled whole
	// onto one shard, so per-shard quotients are disjoint too.
	a, b, err := workload.DivisionCase(32, 40, 6, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	dbase := query.Catalog{"da": a, "db": b}
	plan := "dedup(divide(scan(da),scan(db),quot=0,div=1,by=0))"
	got, want, ms, reg := execBoth(t, 3, dbase, plan, ExecOptions{})
	requireEqual(t, plan, got, want)
	requireNoTemps(t, ms)
	if skips(reg) == 0 {
		t.Error("division gather did not skip the redundant dedup")
	}
}
