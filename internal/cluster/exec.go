package cluster

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"systolicdb/internal/cells"
	"systolicdb/internal/machine"
	"systolicdb/internal/obs"
	"systolicdb/internal/query"
	"systolicdb/internal/relation"
)

// ShardExec is one shard's execution surface as the coordinator sees it:
// run a sub-plan, and stage/unstage the temporary relations the shuffle
// and broadcast strategies ship around. Implementations are the HTTP shard
// client (production) and in-process catalogs (tests); either way the
// engine only ever speaks plan text and relations.
type ShardExec interface {
	// Query parses and executes plan text against the shard's catalog and
	// returns the materialized result.
	Query(ctx context.Context, plan string) (*relation.Relation, error)

	// PutTemp stages rel under name on the shard (transient: never
	// write-ahead logged, invisible to catalog listings).
	PutTemp(ctx context.Context, name string, rel *relation.Relation) error

	// DeleteTemp drops a staged temporary (best effort; the engine calls
	// it in cleanup paths and tolerates failure).
	DeleteTemp(ctx context.Context, name string) error
}

// ExecOptions tunes the distributed executor.
type ExecOptions struct {
	// Fanout bounds how many shards are contacted concurrently per
	// scatter. 0 selects min(shards, 8).
	Fanout int

	// BroadcastLimit is the equi-join strategy knob: a join side with at
	// most this many tuples is broadcast whole to every shard; a bigger
	// side is co-partitioned on the join key instead (both sides
	// re-shuffled through the coordinator, unless already keyed). 0
	// selects 4096. Theta-joins always broadcast — there is no key to
	// co-partition on.
	BroadcastLimit int

	// Backend runs the coordinator-local fallback operators (plans that do
	// not decompose) on this engine.
	Backend machine.Backend

	// Width, when non-nil, reports the column count of a base relation.
	// It enables the "keys already agree" shortcut: a scan joined or
	// divided on exactly its full column list is already co-partitioned
	// (PUT-time hashing covered the whole tuple), so no re-shuffle is
	// needed. Nil or a false return takes the conservative shuffle path.
	Width func(name string) (int, bool)

	// Metrics receives scatter latency, fan-out sizes, gathered rows and
	// strategy counters. Nil selects a private throwaway registry.
	Metrics *obs.Registry
}

func (o ExecOptions) withDefaults(shards int) ExecOptions {
	if o.Fanout <= 0 {
		o.Fanout = min(shards, 8)
	}
	if o.BroadcastLimit <= 0 {
		o.BroadcastLimit = 4096
	}
	if o.Metrics == nil {
		o.Metrics = obs.NewRegistry()
	}
	return o
}

// Engine evaluates plans across a fixed set of shards: whole-plan scatter
// for decomposable operators, broadcast/shuffle strategies for joins and
// division, and a coordinator-local fallback for everything else.
type Engine struct {
	shards []ShardExec
	ring   *Ring
	opt    ExecOptions
	reg    *obs.Registry
	tmpSeq atomic.Uint64
}

// NewEngine builds an executor over the given shards. The ring must have
// been built over the same shard count that partitioned the base
// relations.
func NewEngine(shards []ShardExec, ring *Ring, opt ExecOptions) (*Engine, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("cluster: engine needs at least one shard")
	}
	if ring == nil || ring.Shards() != len(shards) {
		return nil, fmt.Errorf("cluster: ring/shard count mismatch")
	}
	o := opt.withDefaults(len(shards))
	return &Engine{shards: shards, ring: ring, opt: o, reg: o.Metrics}, nil
}

// Execute evaluates a plan across the cluster and returns the gathered
// result. The plan's scans refer to base relations partitioned across the
// shards by full-tuple hash on the engine's ring.
func (e *Engine) Execute(ctx context.Context, n query.Node) (*relation.Relation, error) {
	if n == nil {
		return nil, fmt.Errorf("cluster: nil plan")
	}
	return e.exec(ctx, n)
}

func (e *Engine) exec(ctx context.Context, n query.Node) (*relation.Relation, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if p := Classify(n); p.Scatterable() {
		return e.scatterSame(ctx, n, p)
	}
	// Peel shard-local wrappers (select/project/dedup) off a join or
	// division so they ride along in the scattered sub-plans instead of
	// forcing a full gather first.
	inner, w := peel(n)
	switch op := inner.(type) {
	case query.Join:
		return e.execJoin(ctx, op, w)
	case query.Divide:
		return e.execDivide(ctx, op, w)
	}
	return e.execLocal(ctx, n)
}

// wrapper is a chain of single-child operators peeled off the top of a
// plan, to be rebuilt around a rewritten inner node. projected reports
// that the chain contains a Project, whose images may collide across
// shards, demoting the gather to dedup-merge; dedupped reports a Dedup,
// which alone cannot collide (see Engine.gatherPart).
type wrapper struct {
	rebuild   func(query.Node) query.Node
	projected bool
	dedupped  bool
}

func identityWrapper() wrapper {
	return wrapper{rebuild: func(n query.Node) query.Node { return n }}
}

// peel walks down through Select/Project/Dedup chains (shard-local
// operators) and returns the first other node plus the chain to rebuild
// above it.
func peel(n query.Node) (query.Node, wrapper) {
	w := identityWrapper()
	for {
		switch op := n.(type) {
		case query.Select:
			prev := w.rebuild
			q := op.Query
			w.rebuild = func(c query.Node) query.Node { return prev(query.Select{Child: c, Query: q}) }
			n = op.Child
		case query.Project:
			prev := w.rebuild
			cols := op.Cols
			w.rebuild = func(c query.Node) query.Node { return prev(query.Project{Child: c, Cols: cols}) }
			w.projected = true
			n = op.Child
		case query.Dedup:
			prev := w.rebuild
			w.rebuild = func(c query.Node) query.Node { return prev(query.Dedup{Child: c}) }
			w.dedupped = true
			n = op.Child
		default:
			return n, w
		}
	}
}

// scatterSame ships one identical plan to every shard and gathers.
func (e *Engine) scatterSame(ctx context.Context, n query.Node, p Part) (*relation.Relation, error) {
	return e.scatter(ctx, func(int) query.Node { return n }, p, opName(n))
}

// scatter ships mkNode(i) to shard i (bounded fan-out), concatenates the
// partial results in shard order, and removes cross-shard duplicates when
// the partition property demands it.
func (e *Engine) scatter(ctx context.Context, mkNode func(i int) query.Node, p Part, op string) (*relation.Relation, error) {
	stop := e.reg.Timer("cluster_scatter_seconds", obs.Labels{"op": op}).Start()
	defer stop()

	parts := make([]*relation.Relation, len(e.shards))
	err := e.fanout(ctx, len(e.shards), func(i int) error {
		text, err := query.Format(mkNode(i))
		if err != nil {
			return err
		}
		e.reg.Counter("cluster_subqueries_total", obs.Labels{"op": op}).Inc()
		rel, err := e.shards[i].Query(ctx, text)
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		parts[i] = rel
		return nil
	})
	if err != nil {
		return nil, err
	}
	return e.merge(parts, p, op)
}

// merge reassembles the global result from per-shard partials: concat in
// shard order (multiset-exact for aligned/disjoint plans), plus duplicate
// removal at the gather point for overlap plans.
func (e *Engine) merge(parts []*relation.Relation, p Part, op string) (*relation.Relation, error) {
	out := parts[0]
	for _, part := range parts[1:] {
		var err error
		if out, err = out.Concat(part); err != nil {
			return nil, fmt.Errorf("cluster: gathering %s partials: %w", op, err)
		}
	}
	if p == PartOverlap {
		out = out.Dedup()
	}
	e.reg.Counter("cluster_gather_rows_total", obs.Labels{"op": op}).Add(int64(out.Cardinality()))
	return out, nil
}

// fanout runs f(0..n-1) with bounded parallelism, returning the first
// error (all started calls finish before return).
func (e *Engine) fanout(ctx context.Context, n int, f func(i int) error) error {
	e.reg.Gauge("cluster_fanout_shards", nil).Set(float64(n))
	sem := make(chan struct{}, e.opt.Fanout)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer func() { <-sem; wg.Done() }()
			if err := f(i); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	return firstErr
}

// tempName returns a fresh reserved relation name for staged shuffle /
// broadcast state. The "__tmp_" prefix is what shards treat as ephemeral
// (no write-ahead logging, hidden from listings).
func (e *Engine) tempName(kind string) string {
	return fmt.Sprintf("__tmp_%s_%d", kind, e.tmpSeq.Add(1))
}

// putTempAll stages rel under name on every shard (broadcast).
func (e *Engine) putTempAll(ctx context.Context, name string, rel *relation.Relation) error {
	e.reg.Counter("cluster_broadcast_rows_total", nil).Add(int64(rel.Cardinality() * len(e.shards)))
	return e.fanout(ctx, len(e.shards), func(i int) error {
		return e.shards[i].PutTemp(ctx, name, rel)
	})
}

// putTempParts stages parts[i] under name on shard i (shuffle).
func (e *Engine) putTempParts(ctx context.Context, name string, parts []*relation.Relation) error {
	total := 0
	for _, p := range parts {
		total += p.Cardinality()
	}
	e.reg.Counter("cluster_shuffle_rows_total", nil).Add(int64(total))
	return e.fanout(ctx, len(e.shards), func(i int) error {
		return e.shards[i].PutTemp(ctx, name, parts[i])
	})
}

// dropTemp removes a staged temporary everywhere, best effort.
func (e *Engine) dropTemp(name string) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = e.fanout(ctx, len(e.shards), func(i int) error {
		_ = e.shards[i].DeleteTemp(ctx, name)
		return nil
	})
}

// keyedScan reports whether n is a scan whose PUT-time partitioning
// already equals partitioning by cols: the scan's full column list, in
// order. Then hashing cols is hashing the whole tuple and no re-shuffle is
// needed — the §9 crossbar's "data is already at the right device" case.
func (e *Engine) keyedScan(n query.Node, cols []int) bool {
	scan, ok := n.(query.Scan)
	if !ok || e.opt.Width == nil {
		return false
	}
	w, ok := e.opt.Width(scan.Name)
	if !ok || w != len(cols) {
		return false
	}
	for i, c := range cols {
		if c != i {
			return false
		}
	}
	return true
}

// shardResident resolves the probe side of a join/division to a per-shard
// plan node: a scatterable plan is referenced as-is (it already evaluates
// shard-locally), anything else is materialized through the cluster and
// re-partitioned onto the shards by the given key columns (nil = full
// tuple). It returns the node to embed in per-shard plans and the temp
// name to clean up ("" when nothing was staged).
func (e *Engine) shardResident(ctx context.Context, n query.Node, byCols []int, forceShuffle bool) (query.Node, string, error) {
	if !forceShuffle && Classify(n) == PartAligned && byCols == nil {
		return n, "", nil
	}
	if e.keyedScan(n, byCols) {
		return n, "", nil
	}
	rel, err := e.exec(ctx, n)
	if err != nil {
		return nil, "", err
	}
	parts, err := PartitionBy(rel, byCols, e.ring)
	if err != nil {
		return nil, "", err
	}
	name := e.tempName("part")
	if err := e.putTempParts(ctx, name, parts); err != nil {
		e.dropTemp(name)
		return nil, "", err
	}
	return query.Scan{Name: name}, name, nil
}

// execJoin distributes a join. The build side (R) is always materialized
// through the cluster first; small or theta-join build sides are broadcast
// to every shard, large equi-join build sides are co-partitioned with the
// probe side on the join key (re-shuffling whichever sides aren't already
// keyed). Gather is concat: each matched pair is produced by exactly one
// shard.
func (e *Engine) execJoin(ctx context.Context, op query.Join, w wrapper) (*relation.Relation, error) {
	equi := true
	for _, o := range op.Spec.Ops {
		if o != cells.EQ {
			equi = false
		}
	}

	// Fast path: both sides are scans already partitioned by their join
	// key — co-partitioned at PUT time, nothing moves.
	if equi && e.keyedScan(op.L, op.Spec.ACols) && e.keyedScan(op.R, op.Spec.BCols) {
		e.reg.Counter("cluster_join_strategy_total", obs.Labels{"strategy": "copartitioned"}).Inc()
		return e.scatter(ctx, func(int) query.Node {
			return w.rebuild(query.Join{L: op.L, R: op.R, Spec: op.Spec})
		}, e.gatherPart(w), "join")
	}

	rrel, err := e.exec(ctx, op.R)
	if err != nil {
		return nil, err
	}

	if equi && rrel.Cardinality() > e.opt.BroadcastLimit {
		return e.shuffleJoin(ctx, op, rrel, w)
	}
	return e.broadcastJoin(ctx, op, rrel, w)
}

// broadcastJoin ships the build side whole to every shard and probes the
// (shard-resident) left side against it — the degenerate co-partitioning
// where the build side's partition map is "everywhere". Correct for any
// operator mix, including θ-joins.
func (e *Engine) broadcastJoin(ctx context.Context, op query.Join, rrel *relation.Relation, w wrapper) (*relation.Relation, error) {
	e.reg.Counter("cluster_join_strategy_total", obs.Labels{"strategy": "broadcast"}).Inc()
	lNode, lTemp, err := e.shardResident(ctx, op.L, nil, false)
	if err != nil {
		return nil, err
	}
	if lTemp != "" {
		defer e.dropTemp(lTemp)
	}
	rName := e.tempName("bcast")
	if err := e.putTempAll(ctx, rName, rrel); err != nil {
		e.dropTemp(rName)
		return nil, err
	}
	defer e.dropTemp(rName)
	return e.scatter(ctx, func(int) query.Node {
		return w.rebuild(query.Join{L: lNode, R: query.Scan{Name: rName}, Spec: op.Spec})
	}, e.gatherPart(w), "join")
}

// shuffleJoin co-partitions both sides on the join key through the
// coordinator — the crossbar-as-network move: tuples that must meet are
// routed to the same device.
func (e *Engine) shuffleJoin(ctx context.Context, op query.Join, rrel *relation.Relation, w wrapper) (*relation.Relation, error) {
	e.reg.Counter("cluster_join_strategy_total", obs.Labels{"strategy": "shuffle"}).Inc()
	lNode, lTemp, err := e.shardResident(ctx, op.L, op.Spec.ACols, true)
	if err != nil {
		return nil, err
	}
	if lTemp != "" {
		defer e.dropTemp(lTemp)
	}
	rParts, err := PartitionBy(rrel, op.Spec.BCols, e.ring)
	if err != nil {
		return nil, err
	}
	rName := e.tempName("shuf")
	if err := e.putTempParts(ctx, rName, rParts); err != nil {
		e.dropTemp(rName)
		return nil, err
	}
	defer e.dropTemp(rName)
	return e.scatter(ctx, func(int) query.Node {
		return w.rebuild(query.Join{L: lNode, R: query.Scan{Name: rName}, Spec: op.Spec})
	}, e.gatherPart(w), "join")
}

// gatherPart decides the gather policy for a peeled wrapper over a
// distributed join/division. A Project in the chain can map distinct
// per-shard tuples onto one image, so the gather must dedup-merge
// (PartOverlap). A Dedup alone cannot create cross-shard duplicates:
// Select and Dedup pass full output tuples through unchanged, and every
// strategy partitions so that equal output tuples are produced on one
// shard — join outputs embed the whole probe tuple, whose value picks
// the shard (co-partitioned: full-tuple keyed scan; broadcast: aligned
// or full-tuple re-partition; shuffle: join-key hash, on which equal
// tuples agree); divisions shuffle the dividend on exactly the quotient
// columns the output consists of. Local per-shard Dedups (riding in the
// wrapper) remove within-shard duplicates, so the gather may concatenate
// verbatim — the skip is counted so the equivalence suite and /metrics
// can see it happening.
func (e *Engine) gatherPart(w wrapper) Part {
	if w.projected {
		return PartOverlap
	}
	if w.dedupped {
		e.reg.Counter("cluster_gather_dedup_skipped_total", nil).Inc()
	}
	return PartDisjoint
}

// execDivide distributes a division (§7): the divisor is gathered through
// the cluster and broadcast to every shard; the dividend is re-shuffled
// onto its quotient columns, so every tuple of one quotient group lands on
// one shard and the local "for all" check sees the whole group.
func (e *Engine) execDivide(ctx context.Context, op query.Divide, w wrapper) (*relation.Relation, error) {
	rrel, err := e.exec(ctx, op.R)
	if err != nil {
		return nil, err
	}
	lNode, lTemp, err := e.shardResident(ctx, op.L, op.AQuot, true)
	if err != nil {
		return nil, err
	}
	if lTemp != "" {
		defer e.dropTemp(lTemp)
	}
	rName := e.tempName("div")
	if err := e.putTempAll(ctx, rName, rrel); err != nil {
		e.dropTemp(rName)
		return nil, err
	}
	defer e.dropTemp(rName)
	return e.scatter(ctx, func(int) query.Node {
		return w.rebuild(query.Divide{
			L: lNode, R: query.Scan{Name: rName},
			AQuot: op.AQuot, ADiv: op.ADiv, BCols: op.BCols,
		})
	}, e.gatherPart(w), "divide")
}

// execLocal is the fallback for plans that do not decompose: children are
// still evaluated through the cluster, but the top operator runs on the
// coordinator's own engine.
func (e *Engine) execLocal(ctx context.Context, n query.Node) (*relation.Relation, error) {
	e.reg.Counter("cluster_local_fallback_total", obs.Labels{"op": opName(n)}).Inc()
	switch op := n.(type) {
	case query.Intersect:
		return e.localPair(ctx, op.L, op.R, func(l, r query.Node) query.Node {
			return query.Intersect{L: l, R: r}
		})
	case query.Difference:
		return e.localPair(ctx, op.L, op.R, func(l, r query.Node) query.Node {
			return query.Difference{L: l, R: r}
		})
	case query.Union:
		return e.localPair(ctx, op.L, op.R, func(l, r query.Node) query.Node {
			return query.Union{L: l, R: r}
		})
	case query.Dedup:
		return e.localSingle(ctx, op.Child, func(c query.Node) query.Node {
			return query.Dedup{Child: c}
		})
	case query.Project:
		return e.localSingle(ctx, op.Child, func(c query.Node) query.Node {
			return query.Project{Child: c, Cols: op.Cols}
		})
	case query.Select:
		return e.localSingle(ctx, op.Child, func(c query.Node) query.Node {
			return query.Select{Child: c, Query: op.Query}
		})
	}
	return nil, fmt.Errorf("cluster: unsupported plan node %T", n)
}

func (e *Engine) localPair(ctx context.Context, l, r query.Node, mk func(l, r query.Node) query.Node) (*relation.Relation, error) {
	lrel, err := e.exec(ctx, l)
	if err != nil {
		return nil, err
	}
	rrel, err := e.exec(ctx, r)
	if err != nil {
		return nil, err
	}
	cat := query.Catalog{"__local_l": lrel, "__local_r": rrel}
	return query.ExecuteCtx(ctx, mk(query.Scan{Name: "__local_l"}, query.Scan{Name: "__local_r"}), cat,
		&query.Options{Metrics: e.reg, Backend: e.opt.Backend})
}

func (e *Engine) localSingle(ctx context.Context, child query.Node, mk func(c query.Node) query.Node) (*relation.Relation, error) {
	crel, err := e.exec(ctx, child)
	if err != nil {
		return nil, err
	}
	cat := query.Catalog{"__local_c": crel}
	return query.ExecuteCtx(ctx, mk(query.Scan{Name: "__local_c"}), cat,
		&query.Options{Metrics: e.reg, Backend: e.opt.Backend})
}

// opName mirrors the query package's stable operator naming for metric
// labels.
func opName(n query.Node) string {
	switch n.(type) {
	case query.Scan:
		return "scan"
	case query.Select:
		return "select"
	case query.Intersect:
		return "intersect"
	case query.Difference:
		return "difference"
	case query.Union:
		return "union"
	case query.Dedup:
		return "dedup"
	case query.Project:
		return "project"
	case query.Join:
		return "join"
	case query.Divide:
		return "divide"
	}
	return fmt.Sprintf("%T", n)
}
