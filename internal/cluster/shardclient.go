package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"systolicdb/internal/relation"
	"systolicdb/internal/wal"
)

// TableParser decodes a typed text table (leading `#% types:` directive)
// into a relation. The coordinator passes its catalog's parser, so every
// gathered partial interns into one shared domain pool and partials from
// different shards stay union-compatible.
type TableParser func(text string) (*relation.Relation, error)

// ClientOptions tunes a ShardClient.
type ClientOptions struct {
	// Timeout bounds each individual HTTP call. Default 30s.
	Timeout time.Duration

	// MaxIdlePerHost sizes the connection pool to one shard. It should be
	// at least the coordinator's fan-out so a scatter never stalls
	// re-dialling. Default 16.
	MaxIdlePerHost int

	// Backend, when non-empty, is sent with every sub-query ("pulse" or
	// "bitset") overriding the shard's default engine.
	Backend string

	// Wrap, when non-nil, wraps the client's HTTP transport — the hook the
	// netchaos layer injects through, so every coordinator↔shard byte can
	// be dropped, delayed, corrupted or duplicated deterministically.
	Wrap func(http.RoundTripper) http.RoundTripper
}

// deadlineMargin is subtracted from the caller's remaining budget before
// it is forwarded as timeout_ms: the shard should give up slightly before
// the coordinator does, so the coordinator sees a clean shard-side
// timeout instead of a torn transport error.
const deadlineMargin = 50 * time.Millisecond

// minForwardTimeout is the floor on a forwarded budget — a nearly
// exhausted deadline still gives the shard a beat to answer.
const minForwardTimeout = 10 * time.Millisecond

// ShardClient speaks the systolicdbd HTTP API on behalf of the
// coordinator: sub-queries, relation staging, log shipping and health.
// It implements ShardExec.
type ShardClient struct {
	base  string
	hc    *http.Client
	parse TableParser
	opt   ClientOptions
}

// NewShardClient builds a client for one daemon at base (e.g.
// "http://127.0.0.1:8080"). The transport keeps a warm connection pool
// sized for scatter fan-out.
func NewShardClient(base string, parse TableParser, opt ClientOptions) *ShardClient {
	if opt.Timeout <= 0 {
		opt.Timeout = 30 * time.Second
	}
	if opt.MaxIdlePerHost <= 0 {
		opt.MaxIdlePerHost = 16
	}
	tr := &http.Transport{
		DialContext: (&net.Dialer{
			Timeout:   5 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		MaxIdleConns:          4 * opt.MaxIdlePerHost,
		MaxIdleConnsPerHost:   opt.MaxIdlePerHost,
		IdleConnTimeout:       90 * time.Second,
		ResponseHeaderTimeout: opt.Timeout,
	}
	var rt http.RoundTripper = tr
	if opt.Wrap != nil {
		rt = opt.Wrap(tr)
	}
	return &ShardClient{
		base:  strings.TrimRight(base, "/"),
		hc:    &http.Client{Transport: rt, Timeout: opt.Timeout},
		parse: parse,
		opt:   opt,
	}
}

// Addr returns the daemon base URL this client talks to.
func (c *ShardClient) Addr() string { return c.base }

// shardHTTPError is a non-transport failure from a shard, carrying the
// HTTP status so callers can tell a sick shard (5xx, retryable elsewhere)
// from a rejected request (4xx, the query itself is wrong). retryAfter
// carries the shard's Retry-After hint when it sent one (429/503
// backpressure).
type shardHTTPError struct {
	code       int
	msg        string
	retryAfter time.Duration
}

func (e *shardHTTPError) Error() string {
	return fmt.Sprintf("shard answered %d: %s", e.code, e.msg)
}

// shardBodyError is a response that arrived but cannot be trusted: a
// malformed JSON envelope, an unparseable result table, or a table whose
// checksum does not match the shard's stamp. Under a corrupting network
// these are transient — the retry (possibly against a promoted replica)
// fetches a clean copy — so they are classified retryable.
type shardBodyError struct {
	msg string
}

func (e *shardBodyError) Error() string {
	return fmt.Sprintf("cluster: untrusted shard response: %s", e.msg)
}

// RetryableShardError reports whether err looks like shard or network
// sickness rather than a caller mistake. Retryable errors feed the
// failover ladder; the rest fail the query. The classification:
//
//   - connection refused / reset / timed out → retryable (the crash model
//     the replica ladder exists for)
//   - 5xx and 429 → retryable (sick or overloaded shard)
//   - malformed or checksum-failed response body → retryable (corrupt
//     network path; a retry re-fetches)
//   - other 4xx → fatal (the query itself is wrong)
//   - context.Canceled → fatal (the caller gave up; retrying would
//     outlive the request it belongs to)
func RetryableShardError(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) {
		return false
	}
	var he *shardHTTPError
	if errors.As(err, &he) {
		return he.code >= 500 || he.code == http.StatusTooManyRequests
	}
	var be *shardBodyError
	if errors.As(err, &be) {
		return true
	}
	// Transport-level failures (refused, reset, timed out) are exactly the
	// crash model the replica ladder exists for.
	return true
}

// RetryAfterHint extracts the shard's Retry-After backpressure hint from
// err, if it carried one. The failover ladder stretches its backoff to at
// least the hint, so an overloaded shard is not hammered on the schedule
// it just asked the coordinator to avoid.
func RetryAfterHint(err error) (time.Duration, bool) {
	var he *shardHTTPError
	if errors.As(err, &he) && he.retryAfter > 0 {
		return he.retryAfter, true
	}
	return 0, false
}

// parseRetryAfter decodes a Retry-After header value: delta-seconds or an
// HTTP-date. Returns 0 when absent or unparseable.
func parseRetryAfter(h string) time.Duration {
	h = strings.TrimSpace(h)
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(h); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

func (c *ShardClient) do(req *http.Request) ([]byte, error) {
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		msg := strings.TrimSpace(string(body))
		var env struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &env) == nil && env.Error != "" {
			msg = env.Error
		}
		return nil, &shardHTTPError{
			code:       resp.StatusCode,
			msg:        msg,
			retryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
		}
	}
	return body, nil
}

// Query runs plan text on the shard and parses the typed result table.
// The caller's remaining deadline budget (minus a margin) is forwarded as
// timeout_ms so the shard gives up before the coordinator does, and the
// shard's table_crc32 stamp is verified before the table is parsed —
// a corrupted-in-flight response is rejected as retryable instead of
// being silently merged into a gather.
func (c *ShardClient) Query(ctx context.Context, plan string) (*relation.Relation, error) {
	fields := map[string]any{
		"plan":        plan,
		"table_types": true,
		"backend":     c.opt.Backend,
	}
	if dl, ok := ctx.Deadline(); ok {
		budget := time.Until(dl) - deadlineMargin
		if budget < minForwardTimeout {
			budget = minForwardTimeout
		}
		fields["timeout_ms"] = budget.Milliseconds()
	}
	payload, err := json.Marshal(fields)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/query", bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	body, err := c.do(req)
	if err != nil {
		return nil, err
	}
	var out struct {
		Table      string  `json:"table"`
		TableCRC32 *uint32 `json:"table_crc32"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, &shardBodyError{msg: fmt.Sprintf("bad query response: %v", err)}
	}
	if out.TableCRC32 != nil {
		if got := crc32.ChecksumIEEE([]byte(out.Table)); got != *out.TableCRC32 {
			return nil, &shardBodyError{msg: fmt.Sprintf(
				"table checksum mismatch: got %08x, shard stamped %08x", got, *out.TableCRC32)}
		}
	}
	rel, err := c.parse(out.Table)
	if err != nil {
		return nil, &shardBodyError{msg: fmt.Sprintf("parsing sub-query result: %v", err)}
	}
	return rel, nil
}

// Put uploads rel under name (typed table body, so the shard reconstructs
// the exact column domains).
func (c *ShardClient) Put(ctx context.Context, name string, rel *relation.Relation) error {
	return c.PutKeyed(ctx, name, "", rel)
}

// PutKeyed uploads rel under name with an idempotency key: the shard
// commits the write at most once per key, so a retry after a torn ack
// (request delivered, response dropped) acks without re-applying.
func (c *ShardClient) PutKeyed(ctx context.Context, name, key string, rel *relation.Relation) error {
	var sb strings.Builder
	if err := relation.FormatTableTypes(&sb, rel); err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut,
		c.base+"/relations/"+url.PathEscape(name), strings.NewReader(sb.String()))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "text/plain; charset=utf-8")
	if key != "" {
		req.Header.Set("Idempotency-Key", key)
	}
	_, err = c.do(req)
	return err
}

// Delete drops a relation; deleting a name the shard doesn't hold is not
// an error (idempotent cleanup).
func (c *ShardClient) Delete(ctx context.Context, name string) error {
	return c.DeleteKeyed(ctx, name, "")
}

// DeleteKeyed drops a relation with an idempotency key (see PutKeyed).
func (c *ShardClient) DeleteKeyed(ctx context.Context, name, key string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		c.base+"/relations/"+url.PathEscape(name), nil)
	if err != nil {
		return err
	}
	if key != "" {
		req.Header.Set("Idempotency-Key", key)
	}
	_, err = c.do(req)
	var he *shardHTTPError
	if errors.As(err, &he) && he.code == http.StatusNotFound {
		return nil
	}
	return err
}

// PutTemp and DeleteTemp complete ShardExec; staging uses the same
// relation endpoints (the shard recognises the __tmp_ prefix and skips
// its WAL).
func (c *ShardClient) PutTemp(ctx context.Context, name string, rel *relation.Relation) error {
	return c.Put(ctx, name, rel)
}

func (c *ShardClient) DeleteTemp(ctx context.Context, name string) error {
	return c.Delete(ctx, name)
}

// ShipPayload mirrors the shard's GET /wal/ship response.
type ShipPayload struct {
	Seq     uint64            `json:"seq"`
	Full    bool              `json:"full"`
	Records []wal.ShipRecord  `json:"records"`
	State   map[string]string `json:"state"`
}

// Ship fetches the primary's log-shipping feed past afterSeq.
func (c *ShardClient) Ship(ctx context.Context, afterSeq uint64) (*ShipPayload, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/wal/ship?after=%d", c.base, afterSeq), nil)
	if err != nil {
		return nil, err
	}
	body, err := c.do(req)
	if err != nil {
		return nil, err
	}
	var out ShipPayload
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, fmt.Errorf("cluster: bad ship response: %w", err)
	}
	return &out, nil
}

// Healthz fetches the shard's health document.
func (c *ShardClient) Healthz(ctx context.Context) (map[string]any, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	body, err := c.do(req)
	if err != nil {
		return nil, err
	}
	var out map[string]any
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// ShipState folds a ship payload into the durable catalog state it
// describes, as relation name → typed text table. A full payload is its
// state verbatim; an incremental one folds put-over-del in log order —
// the same fold a follower applies, minus the durability. The scrub
// loop's read repair uses this to reconstruct "what the replica holds"
// for cross-checking a damaged primary.
func ShipState(p *ShipPayload) map[string]string {
	out := make(map[string]string, len(p.State)+len(p.Records))
	if p.Full {
		for name, table := range p.State {
			out[name] = table
		}
		return out
	}
	for _, rec := range p.Records {
		switch rec.Op {
		case "put":
			out[rec.Name] = rec.Table
		case "del":
			delete(out, rec.Name)
		}
	}
	return out
}

// State fetches the shard's full durable state (via the log-shipping feed
// from sequence zero) as relation name → typed text table.
func (c *ShardClient) State(ctx context.Context) (map[string]string, error) {
	p, err := c.Ship(ctx, 0)
	if err != nil {
		return nil, err
	}
	return ShipState(p), nil
}
