package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"time"

	"systolicdb/internal/relation"
	"systolicdb/internal/wal"
)

// TableParser decodes a typed text table (leading `#% types:` directive)
// into a relation. The coordinator passes its catalog's parser, so every
// gathered partial interns into one shared domain pool and partials from
// different shards stay union-compatible.
type TableParser func(text string) (*relation.Relation, error)

// ClientOptions tunes a ShardClient.
type ClientOptions struct {
	// Timeout bounds each individual HTTP call. Default 30s.
	Timeout time.Duration

	// MaxIdlePerHost sizes the connection pool to one shard. It should be
	// at least the coordinator's fan-out so a scatter never stalls
	// re-dialling. Default 16.
	MaxIdlePerHost int

	// Backend, when non-empty, is sent with every sub-query ("pulse" or
	// "bitset") overriding the shard's default engine.
	Backend string
}

// ShardClient speaks the systolicdbd HTTP API on behalf of the
// coordinator: sub-queries, relation staging, log shipping and health.
// It implements ShardExec.
type ShardClient struct {
	base  string
	hc    *http.Client
	parse TableParser
	opt   ClientOptions
}

// NewShardClient builds a client for one daemon at base (e.g.
// "http://127.0.0.1:8080"). The transport keeps a warm connection pool
// sized for scatter fan-out.
func NewShardClient(base string, parse TableParser, opt ClientOptions) *ShardClient {
	if opt.Timeout <= 0 {
		opt.Timeout = 30 * time.Second
	}
	if opt.MaxIdlePerHost <= 0 {
		opt.MaxIdlePerHost = 16
	}
	tr := &http.Transport{
		DialContext: (&net.Dialer{
			Timeout:   5 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		MaxIdleConns:          4 * opt.MaxIdlePerHost,
		MaxIdleConnsPerHost:   opt.MaxIdlePerHost,
		IdleConnTimeout:       90 * time.Second,
		ResponseHeaderTimeout: opt.Timeout,
	}
	return &ShardClient{
		base:  strings.TrimRight(base, "/"),
		hc:    &http.Client{Transport: tr, Timeout: opt.Timeout},
		parse: parse,
		opt:   opt,
	}
}

// Addr returns the daemon base URL this client talks to.
func (c *ShardClient) Addr() string { return c.base }

// shardHTTPError is a non-transport failure from a shard, carrying the
// HTTP status so callers can tell a sick shard (5xx, retryable elsewhere)
// from a rejected request (4xx, the query itself is wrong).
type shardHTTPError struct {
	code int
	msg  string
}

func (e *shardHTTPError) Error() string {
	return fmt.Sprintf("shard answered %d: %s", e.code, e.msg)
}

// RetryableShardError reports whether err looks like shard sickness
// (transport failure, 5xx, overload) rather than a caller mistake (4xx).
// Retryable errors feed the failover ladder; the rest fail the query.
func RetryableShardError(err error) bool {
	if err == nil {
		return false
	}
	var he *shardHTTPError
	if errors.As(err, &he) {
		return he.code >= 500 || he.code == http.StatusTooManyRequests
	}
	// Transport-level failures (refused, reset, timed out) are exactly the
	// crash model the replica ladder exists for.
	return true
}

func (c *ShardClient) do(req *http.Request) ([]byte, error) {
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		msg := strings.TrimSpace(string(body))
		var env struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &env) == nil && env.Error != "" {
			msg = env.Error
		}
		return nil, &shardHTTPError{code: resp.StatusCode, msg: msg}
	}
	return body, nil
}

// Query runs plan text on the shard and parses the typed result table.
func (c *ShardClient) Query(ctx context.Context, plan string) (*relation.Relation, error) {
	payload, err := json.Marshal(map[string]any{
		"plan":        plan,
		"table_types": true,
		"backend":     c.opt.Backend,
	})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/query", bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	body, err := c.do(req)
	if err != nil {
		return nil, err
	}
	var out struct {
		Table string `json:"table"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, fmt.Errorf("cluster: bad query response: %w", err)
	}
	rel, err := c.parse(out.Table)
	if err != nil {
		return nil, fmt.Errorf("cluster: parsing sub-query result: %w", err)
	}
	return rel, nil
}

// Put uploads rel under name (typed table body, so the shard reconstructs
// the exact column domains).
func (c *ShardClient) Put(ctx context.Context, name string, rel *relation.Relation) error {
	var sb strings.Builder
	if err := relation.FormatTableTypes(&sb, rel); err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPut,
		c.base+"/relations/"+url.PathEscape(name), strings.NewReader(sb.String()))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "text/plain; charset=utf-8")
	_, err = c.do(req)
	return err
}

// Delete drops a relation; deleting a name the shard doesn't hold is not
// an error (idempotent cleanup).
func (c *ShardClient) Delete(ctx context.Context, name string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		c.base+"/relations/"+url.PathEscape(name), nil)
	if err != nil {
		return err
	}
	_, err = c.do(req)
	var he *shardHTTPError
	if errors.As(err, &he) && he.code == http.StatusNotFound {
		return nil
	}
	return err
}

// PutTemp and DeleteTemp complete ShardExec; staging uses the same
// relation endpoints (the shard recognises the __tmp_ prefix and skips
// its WAL).
func (c *ShardClient) PutTemp(ctx context.Context, name string, rel *relation.Relation) error {
	return c.Put(ctx, name, rel)
}

func (c *ShardClient) DeleteTemp(ctx context.Context, name string) error {
	return c.Delete(ctx, name)
}

// ShipPayload mirrors the shard's GET /wal/ship response.
type ShipPayload struct {
	Seq     uint64            `json:"seq"`
	Full    bool              `json:"full"`
	Records []wal.ShipRecord  `json:"records"`
	State   map[string]string `json:"state"`
}

// Ship fetches the primary's log-shipping feed past afterSeq.
func (c *ShardClient) Ship(ctx context.Context, afterSeq uint64) (*ShipPayload, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/wal/ship?after=%d", c.base, afterSeq), nil)
	if err != nil {
		return nil, err
	}
	body, err := c.do(req)
	if err != nil {
		return nil, err
	}
	var out ShipPayload
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, fmt.Errorf("cluster: bad ship response: %w", err)
	}
	return &out, nil
}

// Healthz fetches the shard's health document.
func (c *ShardClient) Healthz(ctx context.Context) (map[string]any, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	body, err := c.do(req)
	if err != nil {
		return nil, err
	}
	var out map[string]any
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, err
	}
	return out, nil
}
