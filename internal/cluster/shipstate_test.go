package cluster

import (
	"testing"

	"systolicdb/internal/wal"
)

func TestShipStateFullPayload(t *testing.T) {
	p := &ShipPayload{
		Seq:   9,
		Full:  true,
		State: map[string]string{"a": "table-a", "b": "table-b"},
		// Records must be ignored on a full payload.
		Records: []wal.ShipRecord{{Seq: 1, Op: "put", Name: "zzz", Table: "stale"}},
	}
	got := ShipState(p)
	if len(got) != 2 || got["a"] != "table-a" || got["b"] != "table-b" {
		t.Fatalf("full payload folded wrong: %v", got)
	}
}

func TestShipStateIncrementalFold(t *testing.T) {
	p := &ShipPayload{
		Seq: 5,
		Records: []wal.ShipRecord{
			{Seq: 1, Op: "put", Name: "a", Table: "a-v1"},
			{Seq: 2, Op: "put", Name: "b", Table: "b-v1"},
			{Seq: 3, Op: "put", Name: "a", Table: "a-v2"}, // overwrite wins
			{Seq: 4, Op: "del", Name: "b"},                // delete removes
			{Seq: 5, Op: "del", Name: "nope"},             // delete of absent: no-op
		},
	}
	got := ShipState(p)
	if len(got) != 1 || got["a"] != "a-v2" {
		t.Fatalf("incremental fold wrong: %v", got)
	}
}
