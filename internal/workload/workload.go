// Package workload provides deterministic synthetic relation generators for
// the experiment harness. The paper evaluates its arrays analytically on a
// "typical relation" (§8); the experiments in this repository additionally
// sweep the knobs that the paper's arguments depend on — overlap between
// relations (intersection selectivity), duplication rate (remove-
// duplicates), match factor (join fan-out, up to the degenerate |A||B|
// case), and divisor coverage (division) — so every generator controls one
// of those knobs explicitly.
//
// All generators are pure functions of their seed: the same parameters
// always produce the same relations, so experiments are reproducible.
package workload

import (
	"fmt"
	"math/rand"

	"systolicdb/internal/relation"
)

// SharedDomain is the domain used by all generated columns, so generated
// relations are union-compatible with each other when widths agree.
var SharedDomain = relation.IntDomain("workload")

// Schema returns an m-column schema over the shared workload domain with
// columns named c0, c1, ...
func Schema(m int) (*relation.Schema, error) {
	if m <= 0 {
		return nil, fmt.Errorf("workload: width %d must be positive", m)
	}
	cols := make([]relation.Column, m)
	for i := range cols {
		cols[i] = relation.Column{Name: fmt.Sprintf("c%d", i), Domain: SharedDomain}
	}
	return relation.NewSchema(cols...)
}

// Uniform generates n tuples of width m with elements drawn uniformly from
// [0, domain).
func Uniform(seed int64, n, m int, domain int64) (*relation.Relation, error) {
	if n < 0 || domain <= 0 {
		return nil, fmt.Errorf("workload: invalid parameters n=%d domain=%d", n, domain)
	}
	s, err := Schema(m)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	tuples := make([]relation.Tuple, n)
	for i := range tuples {
		t := make(relation.Tuple, m)
		for k := range t {
			t[k] = relation.Element(rng.Int63n(domain))
		}
		tuples[i] = t
	}
	return relation.NewRelation(s, tuples)
}

// OverlapPair generates two duplicate-free relations of n tuples each such
// that exactly round(overlap*n) tuples of A also appear in B. overlap is
// the intersection selectivity knob for experiments E3/E4.
func OverlapPair(seed int64, n, m int, overlap float64) (a, b *relation.Relation, err error) {
	if overlap < 0 || overlap > 1 {
		return nil, nil, fmt.Errorf("workload: overlap %.2f out of [0,1]", overlap)
	}
	if n < 0 {
		return nil, nil, fmt.Errorf("workload: negative cardinality")
	}
	s, err := Schema(m)
	if err != nil {
		return nil, nil, err
	}
	shared := int(overlap*float64(n) + 0.5)
	// Disjoint id spaces guarantee exact overlap: shared tuples use ids
	// [0, shared), A-only [n, 2n), B-only [2n, 3n). The id is spread
	// across columns so every column participates in the comparison.
	mk := func(id int64) relation.Tuple {
		t := make(relation.Tuple, m)
		for k := range t {
			t[k] = relation.Element(id*int64(m) + int64(k))
		}
		return t
	}
	rng := rand.New(rand.NewSource(seed))
	var aT, bT []relation.Tuple
	for i := 0; i < shared; i++ {
		aT = append(aT, mk(int64(i)))
		bT = append(bT, mk(int64(i)))
	}
	for i := shared; i < n; i++ {
		aT = append(aT, mk(int64(n+i)))
		bT = append(bT, mk(int64(2*n+i)))
	}
	rng.Shuffle(len(aT), func(i, j int) { aT[i], aT[j] = aT[j], aT[i] })
	rng.Shuffle(len(bT), func(i, j int) { bT[i], bT[j] = bT[j], bT[i] })
	if a, err = relation.NewRelation(s, aT); err != nil {
		return nil, nil, err
	}
	if b, err = relation.NewRelation(s, bT); err != nil {
		return nil, nil, err
	}
	return a, b, nil
}

// WithDuplicates generates a multi-relation of n tuples in which
// approximately dupRate of the tuples are repeats of earlier tuples — the
// duplication knob for experiment E5.
func WithDuplicates(seed int64, n, m int, dupRate float64) (*relation.Relation, error) {
	if dupRate < 0 || dupRate > 1 {
		return nil, fmt.Errorf("workload: dupRate %.2f out of [0,1]", dupRate)
	}
	s, err := Schema(m)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	tuples := make([]relation.Tuple, 0, n)
	next := int64(0)
	for i := 0; i < n; i++ {
		if len(tuples) > 0 && rng.Float64() < dupRate {
			tuples = append(tuples, tuples[rng.Intn(len(tuples))].Clone())
			continue
		}
		t := make(relation.Tuple, m)
		for k := range t {
			t[k] = relation.Element(next*int64(m) + int64(k))
		}
		next++
		tuples = append(tuples, t)
	}
	return relation.NewRelation(s, tuples)
}

// JoinPair generates relations A(n x m) and B(n x m) whose first columns
// are join keys with the given match factor: each tuple of A matches on
// average matchFactor tuples of B in column 0. matchFactor = float64(n)
// gives the degenerate all-match case of §6.2.
func JoinPair(seed int64, nA, nB, m int, matchFactor float64) (a, b *relation.Relation, err error) {
	if matchFactor < 0 {
		return nil, nil, fmt.Errorf("workload: negative match factor")
	}
	s, err := Schema(m)
	if err != nil {
		return nil, nil, err
	}
	// Keys are drawn uniformly from a key space of size
	// nB/matchFactor (clamped to >= 1): each A key then matches ~
	// nB / keySpace = matchFactor B tuples.
	keySpace := int64(1)
	if matchFactor > 0 {
		keySpace = int64(float64(nB)/matchFactor + 0.5)
	}
	if keySpace < 1 {
		keySpace = 1
	}
	rng := rand.New(rand.NewSource(seed))
	mk := func(n int, tag int64) []relation.Tuple {
		tuples := make([]relation.Tuple, n)
		for i := range tuples {
			t := make(relation.Tuple, m)
			t[0] = relation.Element(rng.Int63n(keySpace))
			for k := 1; k < m; k++ {
				t[k] = relation.Element(tag*1_000_000 + int64(i)*int64(m) + int64(k))
			}
			tuples[i] = t
		}
		return tuples
	}
	if matchFactor == 0 {
		// Disjoint key spaces: no matches at all.
		aT := mk(nA, 1)
		for _, t := range aT {
			t[0] += relation.Element(keySpace)
		}
		bT := mk(nB, 2)
		if a, err = relation.NewRelation(s, aT); err != nil {
			return nil, nil, err
		}
		if b, err = relation.NewRelation(s, bT); err != nil {
			return nil, nil, err
		}
		return a, b, nil
	}
	if a, err = relation.NewRelation(s, mk(nA, 1)); err != nil {
		return nil, nil, err
	}
	if b, err = relation.NewRelation(s, mk(nB, 2)); err != nil {
		return nil, nil, err
	}
	return a, b, nil
}

// ZipfJoinPair generates join relations whose key column follows a Zipf
// distribution with exponent s over the given key space — the skewed
// workloads where nested-loop output sizes explode. The systolic join
// array's pulse count is data-independent (a hardware guarantee the
// experiments verify against this generator), while the TRUE-t_ij count
// grows with skew.
func ZipfJoinPair(seed int64, nA, nB, m int, s float64, keys int) (a, b *relation.Relation, err error) {
	if s < 1.01 {
		s = 1.01 // rand.Zipf requires s > 1
	}
	if keys < 1 {
		keys = 1
	}
	schema, err := Schema(m)
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, uint64(keys-1))
	mk := func(n int, tag int64) []relation.Tuple {
		tuples := make([]relation.Tuple, n)
		for i := range tuples {
			t := make(relation.Tuple, m)
			t[0] = relation.Element(z.Uint64())
			for k := 1; k < m; k++ {
				t[k] = relation.Element(tag*1_000_000 + int64(i)*int64(m) + int64(k))
			}
			tuples[i] = t
		}
		return tuples
	}
	if a, err = relation.NewRelation(schema, mk(nA, 1)); err != nil {
		return nil, nil, err
	}
	if b, err = relation.NewRelation(schema, mk(nB, 2)); err != nil {
		return nil, nil, err
	}
	return a, b, nil
}

// DivisionCase generates a binary dividend A(x, y) over nX distinct x
// values and a unary divisor B of nY elements, in which each x co-occurs
// with a random subset of the divisor; coverage is the probability that an
// x covers the entire divisor (and therefore enters the quotient).
func DivisionCase(seed int64, nX, nY int, coverage float64) (a, b *relation.Relation, err error) {
	if nX < 0 || nY <= 0 {
		return nil, nil, fmt.Errorf("workload: invalid division shape %dx%d", nX, nY)
	}
	if coverage < 0 || coverage > 1 {
		return nil, nil, fmt.Errorf("workload: coverage %.2f out of [0,1]", coverage)
	}
	xDom := relation.IntDomain("division.x")
	yDom := relation.IntDomain("division.y")
	aSchema, err := relation.NewSchema(
		relation.Column{Name: "x", Domain: xDom},
		relation.Column{Name: "y", Domain: yDom})
	if err != nil {
		return nil, nil, err
	}
	bSchema, err := relation.NewSchema(relation.Column{Name: "y", Domain: yDom})
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	var aT []relation.Tuple
	for x := 0; x < nX; x++ {
		if rng.Float64() < coverage {
			// Full coverage: x gets every divisor element.
			for y := 0; y < nY; y++ {
				aT = append(aT, relation.Tuple{relation.Element(x), relation.Element(y)})
			}
			continue
		}
		// Partial coverage: a strict, non-empty subset.
		miss := rng.Intn(nY)
		for y := 0; y < nY; y++ {
			if y == miss {
				continue
			}
			aT = append(aT, relation.Tuple{relation.Element(x), relation.Element(y)})
		}
		if nY == 1 {
			// Can't have a non-empty strict subset of one element;
			// give it a y outside the divisor instead.
			aT = append(aT, relation.Tuple{relation.Element(x), relation.Element(nY)})
		}
	}
	rng.Shuffle(len(aT), func(i, j int) { aT[i], aT[j] = aT[j], aT[i] })
	var bT []relation.Tuple
	for y := 0; y < nY; y++ {
		bT = append(bT, relation.Tuple{relation.Element(y)})
	}
	if a, err = relation.NewRelation(aSchema, aT); err != nil {
		return nil, nil, err
	}
	if b, err = relation.NewRelation(bSchema, bT); err != nil {
		return nil, nil, err
	}
	return a, b, nil
}
