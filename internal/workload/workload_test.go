package workload

import (
	"testing"
)

func TestUniformDeterministic(t *testing.T) {
	a, err := Uniform(7, 20, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Uniform(7, 20, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !a.EqualAsMultiset(b) {
		t.Error("same seed produced different relations")
	}
	c, err := Uniform(8, 20, 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if a.EqualAsMultiset(c) {
		t.Error("different seeds produced identical relations (suspicious)")
	}
	if a.Cardinality() != 20 || a.Width() != 3 {
		t.Errorf("shape %dx%d, want 20x3", a.Cardinality(), a.Width())
	}
}

func TestUniformValidation(t *testing.T) {
	if _, err := Uniform(1, -1, 2, 10); err == nil {
		t.Error("negative n not rejected")
	}
	if _, err := Uniform(1, 5, 0, 10); err == nil {
		t.Error("zero width not rejected")
	}
	if _, err := Uniform(1, 5, 2, 0); err == nil {
		t.Error("zero domain not rejected")
	}
}

func TestOverlapPairExact(t *testing.T) {
	for _, overlap := range []float64{0, 0.25, 0.5, 1} {
		a, b, err := OverlapPair(3, 40, 2, overlap)
		if err != nil {
			t.Fatal(err)
		}
		if a.HasDuplicates() || b.HasDuplicates() {
			t.Fatalf("overlap %.2f: generated duplicates", overlap)
		}
		shared := 0
		for i := 0; i < a.Cardinality(); i++ {
			if b.Contains(a.Tuple(i)) {
				shared++
			}
		}
		want := int(overlap*40 + 0.5)
		if shared != want {
			t.Errorf("overlap %.2f: %d shared tuples, want %d", overlap, shared, want)
		}
	}
	if _, _, err := OverlapPair(1, 10, 2, 1.5); err == nil {
		t.Error("overlap > 1 not rejected")
	}
}

func TestWithDuplicatesRates(t *testing.T) {
	none, err := WithDuplicates(5, 50, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if none.HasDuplicates() {
		t.Error("dupRate 0 produced duplicates")
	}
	heavy, err := WithDuplicates(5, 50, 2, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if !heavy.HasDuplicates() {
		t.Error("dupRate 0.9 produced no duplicates")
	}
	distinct := heavy.Dedup().Cardinality()
	if distinct >= 30 {
		t.Errorf("dupRate 0.9 left %d distinct of 50 (expected far fewer)", distinct)
	}
	if _, err := WithDuplicates(1, 10, 2, -0.1); err == nil {
		t.Error("negative dupRate not rejected")
	}
}

func TestJoinPairMatchFactor(t *testing.T) {
	a, b, err := JoinPair(9, 50, 50, 2, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	matches := 0
	for i := 0; i < a.Cardinality(); i++ {
		for j := 0; j < b.Cardinality(); j++ {
			if a.Tuple(i)[0] == b.Tuple(j)[0] {
				matches++
			}
		}
	}
	perA := float64(matches) / 50
	if perA < 0.5 || perA > 8 {
		t.Errorf("match factor %.2f far from requested 2.0", perA)
	}
}

func TestJoinPairZeroMatches(t *testing.T) {
	a, b, err := JoinPair(2, 20, 20, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.Cardinality(); i++ {
		for j := 0; j < b.Cardinality(); j++ {
			if a.Tuple(i)[0] == b.Tuple(j)[0] {
				t.Fatalf("match factor 0 produced a match")
			}
		}
	}
}

func TestJoinPairDegenerate(t *testing.T) {
	a, b, err := JoinPair(4, 10, 10, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Key space collapses to 1: every pair matches.
	for i := 0; i < a.Cardinality(); i++ {
		for j := 0; j < b.Cardinality(); j++ {
			if a.Tuple(i)[0] != b.Tuple(j)[0] {
				t.Fatal("degenerate join workload has non-matching pair")
			}
		}
	}
}

func TestZipfJoinPairSkew(t *testing.T) {
	a, b, err := ZipfJoinPair(11, 200, 200, 2, 2.0, 50)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cardinality() != 200 || b.Cardinality() != 200 {
		t.Fatalf("shape wrong: %d / %d", a.Cardinality(), b.Cardinality())
	}
	// Under Zipf(2.0), the most frequent key must dominate.
	counts := map[int64]int{}
	for i := 0; i < a.Cardinality(); i++ {
		counts[int64(a.Tuple(i)[0])]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 80 {
		t.Errorf("hottest key has %d of 200 tuples; expected heavy skew", max)
	}
	// Determinism and parameter clamping.
	a2, _, err := ZipfJoinPair(11, 200, 200, 2, 2.0, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !a.EqualAsMultiset(a2) {
		t.Error("same seed produced different skewed relations")
	}
	if _, _, err := ZipfJoinPair(1, 10, 10, 2, 0.5, 0); err != nil {
		t.Errorf("clamped parameters rejected: %v", err)
	}
}

func TestDivisionCaseCoverage(t *testing.T) {
	a, b, err := DivisionCase(6, 10, 4, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if b.Cardinality() != 4 {
		t.Fatalf("divisor size %d, want 4", b.Cardinality())
	}
	// Full coverage: every x has all 4 divisor values.
	perX := make(map[int64]map[int64]bool)
	for i := 0; i < a.Cardinality(); i++ {
		tu := a.Tuple(i)
		if perX[int64(tu[0])] == nil {
			perX[int64(tu[0])] = make(map[int64]bool)
		}
		perX[int64(tu[0])][int64(tu[1])] = true
	}
	if len(perX) != 10 {
		t.Errorf("%d distinct x, want 10", len(perX))
	}
	for x, ys := range perX {
		if len(ys) != 4 {
			t.Errorf("x=%d covers %d divisor values, want 4", x, len(ys))
		}
	}

	none, _, err := DivisionCase(6, 10, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	perX = make(map[int64]map[int64]bool)
	for i := 0; i < none.Cardinality(); i++ {
		tu := none.Tuple(i)
		if perX[int64(tu[0])] == nil {
			perX[int64(tu[0])] = make(map[int64]bool)
		}
		perX[int64(tu[0])][int64(tu[1])] = true
	}
	for x, ys := range perX {
		full := true
		for y := 0; y < 4; y++ {
			if !ys[int64(y)] {
				full = false
			}
		}
		if full {
			t.Errorf("coverage 0: x=%d still covers the whole divisor", x)
		}
	}
}

func TestDivisionCaseValidation(t *testing.T) {
	if _, _, err := DivisionCase(1, 5, 0, 0.5); err == nil {
		t.Error("empty divisor shape not rejected")
	}
	if _, _, err := DivisionCase(1, 5, 3, 2); err == nil {
		t.Error("coverage > 1 not rejected")
	}
}
