package cells

import (
	"systolicdb/internal/relation"
	"systolicdb/internal/systolic"
)

// StreamTheta is the second programmability option of paper §6.3.2: "The
// particular operation to be performed might be encoded in a few bits, and
// passed along with the a_ij and b_ij. Or, it might be preloaded into the
// array of processors." Theta implements the preloaded variant; StreamTheta
// implements the streamed variant — the boolean token travelling on the
// west-east result channel carries the operator code in its value field,
// so the same physical array evaluates a different comparison per pair
// without reconfiguration.
//
// "This illustrates that some degree of programability can often be
// provided to a processor array at the expense of additional logic."
type StreamTheta struct{}

// EncodeOpToken builds the west-side token for a pair: the running boolean
// in the flag and the operator code in the value.
func EncodeOpToken(initial bool, op Op, tag systolic.Tag) systolic.Token {
	t := systolic.FlagToken(initial, tag)
	t.Val = relation.Element(op)
	t.HasVal = true
	return t
}

// Step implements systolic.Cell.
func (StreamTheta) Step(in systolic.Inputs) systolic.Outputs {
	var out systolic.Outputs
	if in.N.HasVal {
		out.S = in.N
	}
	if in.S.HasVal {
		out.N = in.S
	}
	if in.W.HasFlag {
		t := in.W
		if in.N.HasVal && in.S.HasVal {
			op := Op(t.Val) // operator code rides with the result token
			t.Flag = t.Flag && op.Apply(in.N.Val, in.S.Val)
		}
		out.E = t
	}
	return out
}

// Reset implements systolic.Cell; StreamTheta is stateless.
func (StreamTheta) Reset() {}
