// Package cells implements the processor algorithms of Kung & Lehman
// (1980). Per paper §2.2, the arrays all share the orthogonal/linear
// processor prototype of Figure 2-2; "it is the algorithm actually executed
// by each processor that determines the function of the array". Each type
// in this package is one such algorithm:
//
//   - Compare      — the comparison processor of Figure 3-2
//   - Theta        — its §6.3.2 generalisation to any binary comparison
//   - Accumulate   — the OR-accumulation processor of §4.2
//   - Invert       — the output inverter mentioned in §4.3 (difference)
//   - DividendStore, DividendGate — the two dividend-array columns of §7
//   - Divisor      — the divisor-array processor of §7
//   - Wire         — a pass-through processor (structural filler)
package cells

import (
	"systolicdb/internal/relation"
	"systolicdb/internal/systolic"
)

// Op is a binary comparison operator for θ-joins (paper §6.3.2: "this
// notion can be generalized to allow any sort of binary comparison (e.g. <,
// >, etc.)").
type Op int

// Comparison operators.
const (
	EQ Op = iota
	NE
	LT
	LE
	GT
	GE
)

// String returns the operator's conventional symbol.
func (o Op) String() string {
	switch o {
	case EQ:
		return "="
	case NE:
		return "!="
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	}
	return "op?"
}

// Apply evaluates "a o b".
func (o Op) Apply(a, b relation.Element) bool {
	switch o {
	case EQ:
		return a == b
	case NE:
		return a != b
	case LT:
		return a < b
	case LE:
		return a <= b
	case GT:
		return a > b
	case GE:
		return a >= b
	}
	return false
}

// Compare is the comparison processor of Figure 3-2. Per pulse:
//
//	aOUT = aIN   (relation A's element continues downward)
//	bOUT = bIN   (relation B's element continues upward)
//	tOUT = tIN AND (aIN = bIN)   (partial result continues rightward)
//
// If the boolean line carries a token but one of the data lines is idle
// (which a correct feeding schedule never produces mid-comparison), the
// boolean passes through unchanged; trace-tag tests in the comparison
// package verify the schedules keep operands and partial results aligned.
type Compare struct{}

// Step implements systolic.Cell.
func (Compare) Step(in systolic.Inputs) systolic.Outputs {
	return thetaStep(EQ, in)
}

// Reset implements systolic.Cell; Compare is stateless.
func (Compare) Reset() {}

// Theta is the §6.3.2 θ-comparison processor: identical wiring to Compare
// but with a preloaded comparison operator ("it might be preloaded into the
// array of processors").
type Theta struct {
	Op Op
}

// Step implements systolic.Cell.
func (c Theta) Step(in systolic.Inputs) systolic.Outputs {
	return thetaStep(c.Op, in)
}

// Reset implements systolic.Cell; Theta is stateless.
func (Theta) Reset() {}

func thetaStep(op Op, in systolic.Inputs) systolic.Outputs {
	var out systolic.Outputs
	if in.N.HasVal {
		out.S = in.N // a continues down
	}
	if in.S.HasVal {
		out.N = in.S // b continues up
	}
	if in.W.HasFlag {
		t := in.W
		if in.N.HasVal && in.S.HasVal {
			t.Flag = t.Flag && op.Apply(in.N.Val, in.S.Val)
		}
		out.E = t
	}
	return out
}

// Emit is the comparison processor used in the join array's right-most
// column (Figure 6-1): it behaves like Theta, but the t it produces is the
// final t_ij, emitted for collection rather than further accumulation. It
// is structurally identical to Theta — the distinction is only which
// boundary the driver drains — so Emit is an alias kept for readability in
// array builders.
type Emit = Theta

// Accumulate is the accumulation processor of §4.2. Per pulse:
//
//	tDOWN_OUT = tDOWN_IN OR tLEFT_IN
//
// and when no t arrives from the left, the processor "simply passes on the
// t_i that it has". The t_i stream moves top-to-bottom.
type Accumulate struct{}

// Step implements systolic.Cell.
func (Accumulate) Step(in systolic.Inputs) systolic.Outputs {
	var out systolic.Outputs
	switch {
	case in.N.HasFlag && in.W.HasFlag:
		t := in.N
		t.Flag = t.Flag || in.W.Flag
		out.S = t
	case in.N.HasFlag:
		out.S = in.N
	case in.W.HasFlag:
		// A t_ij arrived with no accumulator present. A correct
		// schedule aligns the two; forwarding the orphan down keeps
		// the array total (and tests assert it never happens).
		out.S = in.W
	}
	return out
}

// Reset implements systolic.Cell; Accumulate is stateless.
func (Accumulate) Reset() {}

// Invert is the inverter of §4.3 ("alternatively, we could just put an
// inverter on the output line of the accumulation array"), which turns the
// intersection array into the difference array. It negates booleans moving
// top-to-bottom and passes data tokens unchanged.
type Invert struct{}

// Step implements systolic.Cell.
func (Invert) Step(in systolic.Inputs) systolic.Outputs {
	var out systolic.Outputs
	if in.N.Present() {
		t := in.N
		if t.HasFlag {
			t.Flag = !t.Flag
		}
		out.S = t
	}
	return out
}

// Reset implements systolic.Cell; Invert is stateless.
func (Invert) Reset() {}

// DividendStore is the left-column dividend-array processor of §7. It
// stores one distinct element x appearing in column A1 of the dividend
// ("the left-hand column ... stores (distinct) elements appearing in column
// A1, one element to a processor"). Per pulse, an incoming z (a value from
// column A1 of some dividend pair, moving bottom-to-top) is compared to the
// stored x; the match bit leaves on the right output line and z continues
// upward.
type DividendStore struct {
	X relation.Element
}

// Step implements systolic.Cell.
func (c *DividendStore) Step(in systolic.Inputs) systolic.Outputs {
	var out systolic.Outputs
	if in.S.HasVal {
		out.N = in.S // z continues up
		out.E = systolic.FlagToken(in.S.Val == c.X, in.S.Tag)
	}
	return out
}

// Reset implements systolic.Cell. The preloaded element is configuration,
// not run state, so it survives Reset.
func (c *DividendStore) Reset() {}

// DividendGate is the right-column dividend-array processor of §7. The y of
// a dividend pair arrives from below (one step behind its z); the boolean t
// produced by the DividendStore on the left "arrives at the processor in
// the right column, just as the associated y arrives there. If t is true,
// then y is output from the right side of the processor. Otherwise, some
// null value is output." The y also continues upward so that every stored
// x sees every pair.
type DividendGate struct{}

// Step implements systolic.Cell.
func (DividendGate) Step(in systolic.Inputs) systolic.Outputs {
	var out systolic.Outputs
	switch {
	case in.S.HasVal:
		out.N = in.S // y continues up
		if in.W.HasFlag {
			y := in.S
			if !in.W.Flag {
				y.Val = relation.Null
			}
			out.E = y
		}
	case in.S.HasFlag:
		// The AND probe follows the last dividend pair up the y
		// column; as it passes each row it turns right into the
		// divisor array, arriving one pulse behind the row's last y
		// ("doing an AND across the row after the dividend passes
		// through the array", §7).
		out.N = in.S
		out.E = in.S
	}
	return out
}

// Reset implements systolic.Cell; DividendGate is stateless.
func (DividendGate) Reset() {}

// Divisor is the divisor-array processor of §7. It stores one element of
// the divisor relation B. "Each processor of the row checks if the element
// it is storing matches any of the y's passing from left to right along the
// row"; the match is latched in a register. After the dividend has passed
// through, an AND probe (a boolean token) is sent along the row: each
// processor ANDs its register into the probe, so the token leaving the
// right end is TRUE iff every stored element was matched — i.e. iff the
// row's x belongs to the quotient.
type Divisor struct {
	Y       relation.Element
	matched bool
}

// Matched reports the cell's latched match register (for inspection and
// non-systolic readout in tests).
func (c *Divisor) Matched() bool { return c.matched }

// Step implements systolic.Cell.
func (c *Divisor) Step(in systolic.Inputs) systolic.Outputs {
	var out systolic.Outputs
	switch {
	case in.W.HasVal:
		if in.W.Val != relation.Null && in.W.Val == c.Y {
			c.matched = true
		}
		out.E = in.W // y (or null) continues along the row
	case in.W.HasFlag:
		probe := in.W
		probe.Flag = probe.Flag && c.matched
		out.E = probe
	}
	return out
}

// Reset implements systolic.Cell: clears the match register, keeps the
// preloaded element.
func (c *Divisor) Reset() { c.matched = false }

// Wire is a pass-through processor: every input token continues straight
// across (N in -> S out, S in -> N out, W in -> E out, E in -> W out). It
// is used as structural filler when composing modules of different heights
// into one grid.
type Wire struct{}

// Step implements systolic.Cell.
func (Wire) Step(in systolic.Inputs) systolic.Outputs {
	var out systolic.Outputs
	if in.N.Present() {
		out.S = in.N
	}
	if in.S.Present() {
		out.N = in.S
	}
	if in.W.Present() {
		out.E = in.W
	}
	if in.E.Present() {
		out.W = in.E
	}
	return out
}

// Reset implements systolic.Cell; Wire is stateless.
func (Wire) Reset() {}
