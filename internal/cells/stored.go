package cells

import (
	"systolicdb/internal/relation"
	"systolicdb/internal/systolic"
)

// StoredCompare is the comparison processor for the "fixed relation"
// implementation of paper §8: "rather than marching two relations against
// each other along the systolic array, we let only one relation move while
// the other remains fixed." One element of the fixed relation B is
// preloaded into the cell; elements of A stream top-to-bottom and partial
// results stream left-to-right, as in Compare.
//
// Because there is no counter-flow, consecutive A tuples can follow one
// pulse apart instead of two, which is what doubles the utilization
// (experiment E14).
type StoredCompare struct {
	B  relation.Element
	Op Op
}

// Step implements systolic.Cell.
func (c *StoredCompare) Step(in systolic.Inputs) systolic.Outputs {
	var out systolic.Outputs
	if in.N.HasVal {
		out.S = in.N // a continues down
	}
	if in.W.HasFlag {
		t := in.W
		if in.N.HasVal {
			t.Flag = t.Flag && c.Op.Apply(in.N.Val, c.B)
		}
		out.E = t
	}
	return out
}

// Reset implements systolic.Cell. The preloaded element is configuration,
// not run state, so it survives Reset.
func (c *StoredCompare) Reset() {}
