package cells

import (
	"testing"
	"testing/quick"

	"systolicdb/internal/relation"
	"systolicdb/internal/systolic"
)

func val(v int64) systolic.Token { return systolic.ValToken(relation.Element(v), systolic.Tag{}) }
func flag(b bool) systolic.Token { return systolic.FlagToken(b, systolic.Tag{}) }

func TestOpApply(t *testing.T) {
	cases := []struct {
		op   Op
		a, b relation.Element
		want bool
	}{
		{EQ, 1, 1, true}, {EQ, 1, 2, false},
		{NE, 1, 2, true}, {NE, 1, 1, false},
		{LT, 1, 2, true}, {LT, 2, 2, false},
		{LE, 2, 2, true}, {LE, 3, 2, false},
		{GT, 3, 2, true}, {GT, 2, 2, false},
		{GE, 2, 2, true}, {GE, 1, 2, false},
	}
	for _, c := range cases {
		if got := c.op.Apply(c.a, c.b); got != c.want {
			t.Errorf("%d %v %d = %v, want %v", c.a, c.op, c.b, got, c.want)
		}
	}
	if Op(99).Apply(1, 1) {
		t.Error("invalid op should be false")
	}
	if Op(99).String() != "op?" || EQ.String() != "=" || GE.String() != ">=" {
		t.Error("op strings wrong")
	}
}

func TestCompareCellDataflow(t *testing.T) {
	// Figure 3-2: a down, b up, t right with AND of equality.
	out := Compare{}.Step(systolic.Inputs{N: val(5), S: val(5), W: flag(true)})
	if !out.S.HasVal || out.S.Val != 5 {
		t.Error("a did not continue down")
	}
	if !out.N.HasVal || out.N.Val != 5 {
		t.Error("b did not continue up")
	}
	if !out.E.HasFlag || !out.E.Flag {
		t.Error("equal elements with TRUE input must emit TRUE")
	}
	out = Compare{}.Step(systolic.Inputs{N: val(5), S: val(6), W: flag(true)})
	if out.E.Flag {
		t.Error("unequal elements must emit FALSE")
	}
	// A FALSE input stays FALSE even on a match (§3.1's "surprisingly
	// useful" property).
	out = Compare{}.Step(systolic.Inputs{N: val(5), S: val(5), W: flag(false)})
	if out.E.Flag {
		t.Error("FALSE initial input must stay FALSE")
	}
	// No boolean input, no boolean output.
	out = Compare{}.Step(systolic.Inputs{N: val(5), S: val(5)})
	if out.E.Present() {
		t.Error("t emitted with no t input")
	}
}

func TestThetaCellOps(t *testing.T) {
	out := Theta{Op: GT}.Step(systolic.Inputs{N: val(5), S: val(3), W: flag(true)})
	if !out.E.Flag {
		t.Error("5 > 3 should emit TRUE")
	}
	out = Theta{Op: LT}.Step(systolic.Inputs{N: val(5), S: val(3), W: flag(true)})
	if out.E.Flag {
		t.Error("5 < 3 should emit FALSE")
	}
}

func TestAccumulateCell(t *testing.T) {
	// OR of the two inputs; N continues down.
	cases := []struct{ n, w, want bool }{
		{false, false, false}, {true, false, true}, {false, true, true}, {true, true, true},
	}
	for _, c := range cases {
		out := Accumulate{}.Step(systolic.Inputs{N: flag(c.n), W: flag(c.w)})
		if !out.S.HasFlag || out.S.Flag != c.want {
			t.Errorf("accumulate(%v, %v) = %v, want %v", c.n, c.w, out.S, c.want)
		}
	}
	// Not busy: pass the accumulator through.
	out := Accumulate{}.Step(systolic.Inputs{N: flag(true)})
	if !out.S.HasFlag || !out.S.Flag {
		t.Error("idle accumulation cell must pass t_i down")
	}
	// Orphan from the left is forwarded rather than dropped.
	out = Accumulate{}.Step(systolic.Inputs{W: flag(true)})
	if !out.S.HasFlag {
		t.Error("orphan t_ij dropped")
	}
}

func TestInvertCell(t *testing.T) {
	out := Invert{}.Step(systolic.Inputs{N: flag(true)})
	if out.S.Flag {
		t.Error("TRUE not inverted")
	}
	out = Invert{}.Step(systolic.Inputs{N: flag(false)})
	if !out.S.Flag {
		t.Error("FALSE not inverted")
	}
	out = Invert{}.Step(systolic.Inputs{N: val(3)})
	if !out.S.HasVal || out.S.Val != 3 {
		t.Error("data token not passed through")
	}
}

func TestDividendStoreCell(t *testing.T) {
	c := &DividendStore{X: 7}
	out := c.Step(systolic.Inputs{S: val(7)})
	if !out.N.HasVal || out.N.Val != 7 {
		t.Error("z did not continue up")
	}
	if !out.E.HasFlag || !out.E.Flag {
		t.Error("match not signalled")
	}
	out = c.Step(systolic.Inputs{S: val(8)})
	if out.E.Flag {
		t.Error("non-match signalled TRUE")
	}
	c.Reset()
	if c.X != 7 {
		t.Error("Reset cleared the preloaded element")
	}
}

func TestDividendGateCell(t *testing.T) {
	// Match: y passes to the right.
	out := DividendGate{}.Step(systolic.Inputs{S: val(42), W: flag(true)})
	if !out.E.HasVal || out.E.Val != 42 {
		t.Error("matched y not emitted")
	}
	if !out.N.HasVal || out.N.Val != 42 {
		t.Error("y did not continue up")
	}
	// No match: null emitted.
	out = DividendGate{}.Step(systolic.Inputs{S: val(42), W: flag(false)})
	if !out.E.HasVal || out.E.Val != relation.Null {
		t.Error("unmatched y must become the null value")
	}
	// Probe passes up and right.
	out = DividendGate{}.Step(systolic.Inputs{S: flag(true)})
	if !out.N.HasFlag || !out.E.HasFlag {
		t.Error("probe not forwarded up and right")
	}
}

func TestDivisorCell(t *testing.T) {
	c := &Divisor{Y: 9}
	if c.Matched() {
		t.Error("fresh cell already matched")
	}
	out := c.Step(systolic.Inputs{W: val(5)})
	if !out.E.HasVal || out.E.Val != 5 {
		t.Error("y not forwarded")
	}
	if c.Matched() {
		t.Error("non-matching y set the register")
	}
	c.Step(systolic.Inputs{W: val(9)})
	if !c.Matched() {
		t.Error("matching y did not set the register")
	}
	// Null values never match.
	c2 := &Divisor{Y: relation.Null}
	c2.Step(systolic.Inputs{W: systolic.ValToken(relation.Null, systolic.Tag{})})
	if c2.Matched() {
		t.Error("null matched null")
	}
	// AND probe.
	out = c.Step(systolic.Inputs{W: flag(true)})
	if !out.E.HasFlag || !out.E.Flag {
		t.Error("probe AND matched register wrong")
	}
	c.Reset()
	if c.Matched() {
		t.Error("Reset did not clear the register")
	}
	out = c.Step(systolic.Inputs{W: flag(true)})
	if out.E.Flag {
		t.Error("probe TRUE through unmatched cell")
	}
}

func TestStoredCompareCell(t *testing.T) {
	c := &StoredCompare{B: 4, Op: EQ}
	out := c.Step(systolic.Inputs{N: val(4), W: flag(true)})
	if !out.E.HasFlag || !out.E.Flag {
		t.Error("stored compare missed a match")
	}
	if !out.S.HasVal {
		t.Error("a did not continue down")
	}
	out = c.Step(systolic.Inputs{N: val(5), W: flag(true)})
	if out.E.Flag {
		t.Error("stored compare false positive")
	}
}

func TestWireCell(t *testing.T) {
	out := Wire{}.Step(systolic.Inputs{N: val(1), S: val(2), W: flag(true), E: flag(false)})
	if out.S.Val != 1 || out.N.Val != 2 || !out.E.Flag || out.W.Flag {
		t.Errorf("wire routing wrong: %+v", out)
	}
}

func TestCompareCellEquivalentToSpec(t *testing.T) {
	// Property: tOUT == tIN && (a == b) for all inputs.
	f := func(a, b int16, tin bool) bool {
		out := Compare{}.Step(systolic.Inputs{N: val(int64(a)), S: val(int64(b)), W: flag(tin)})
		return out.E.Flag == (tin && a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
