package patternmatch

import (
	"bytes"
	"testing"

	"systolicdb/internal/relation"
)

// FuzzMatchString cross-checks the systolic matcher against bytes.Index
// semantics on arbitrary inputs (no wildcards in this harness, so the two
// must agree exactly).
func FuzzMatchString(f *testing.F) {
	f.Add("ab", "abcabab")
	f.Add("a", "")
	f.Add("xyz", "xyxyxyz")
	f.Add("aaa", "aaaaaa")
	f.Fuzz(func(t *testing.T, pattern, text string) {
		if len(pattern) == 0 || len(pattern) > 16 || len(text) > 256 {
			t.Skip()
		}
		for i := 0; i < len(pattern); i++ {
			if pattern[i] == '?' {
				t.Skip() // wildcard semantics diverge from bytes.Index
			}
		}
		pos, _, err := Match(toElems(pattern), toElems(text))
		if err != nil {
			t.Fatalf("Match failed: %v", err)
		}
		for p := range pos {
			want := bytes.Equal([]byte(text[p:p+len(pattern)]), []byte(pattern))
			if pos[p] != want {
				t.Errorf("alignment %d: got %v, want %v (pattern %q in %q)",
					p, pos[p], want, pattern, text)
			}
		}
	})
}

func toElems(s string) []relation.Element {
	out := make([]relation.Element, len(s))
	for i := 0; i < len(s); i++ { // byte-wise; `range` would skip inside runes
		out[i] = relation.Element(s[i])
	}
	return out
}
