// Package patternmatch implements the pattern-match chip of Foster & Kung —
// reference [3] of Kung & Lehman (1980) — which §8 describes as "a
// scaled-down version of the comparison array in Section 3. (This chip has
// been fabricated, tested, and found to work.)"
//
// The chip is a linear systolic array with the pattern preloaded, one
// character per cell. Text characters stream through at one cell per
// pulse; partial match results travel the same direction at *half* speed
// (each cell holds a result for one pulse before forwarding it), so the
// result for alignment p meets exactly the text characters p, p+1, ...,
// p+L-1 at cells 0, 1, ..., L-1 and accumulates the AND of the per-cell
// comparisons. One alignment result is produced per pulse at steady state.
//
// A Wildcard pattern element matches any character — the "don't care"
// capability of the fabricated chip.
package patternmatch

import (
	"fmt"

	"systolicdb/internal/relation"
	"systolicdb/internal/systolic"
)

// Wildcard is the pattern element that matches any text character.
const Wildcard relation.Element = -1

// cell is one pattern-match processor: a stored pattern character, a text
// character passing at full speed, and a result register that delays each
// partial match by one pulse (half-speed results).
type cell struct {
	pat  relation.Element
	held systolic.Token // result latched last pulse, forwarded this pulse
}

func (c *cell) Step(in systolic.Inputs) systolic.Outputs {
	var out systolic.Outputs
	// Forward the result held from the previous pulse.
	if c.held.Present() {
		out.E = c.held
		c.held = systolic.Empty
	}
	// Text continues at full speed on the N line (a dedicated character
	// channel, distinct from the W/E result channel).
	if in.N.HasVal {
		out.S = in.N
	}
	// A result arriving from the west is combined with the text
	// character arriving this same pulse, then held for one pulse.
	if in.W.HasFlag {
		r := in.W
		if in.N.HasVal {
			ok := c.pat == Wildcard || in.N.Val == c.pat
			r.Flag = r.Flag && ok
		} else {
			// The alignment runs off the end of the text: no match.
			r.Flag = false
		}
		c.held = r
	}
	return out
}

func (c *cell) Reset() { c.held = systolic.Empty }

// Match streams text through a pattern-match array and returns one boolean
// per alignment p in [0, len(text)-len(pattern)]: whether
// text[p : p+len(pattern)] matches the pattern.
//
// Implementation note on geometry: the engine's grids route W->E and N->S
// independently, so the linear chip is modelled as a 1 x L grid whose
// "text" channel uses the N/S ports of each column (re-injected to the
// next column by the driver via the schedule) — physically the chip has
// two forward channels of different speeds, which is exactly what the two
// port pairs model. Text character q is fed to column k at pulse q + k;
// the result for alignment p is injected at column 0 at pulse p and
// emerges from column L-1 at pulse p + 2L - 2.
func Match(pattern, text []relation.Element) ([]bool, systolic.Stats, error) {
	L := len(pattern)
	if L == 0 {
		return nil, systolic.Stats{}, fmt.Errorf("patternmatch: empty pattern")
	}
	nAlign := len(text) - L + 1
	if nAlign <= 0 {
		return []bool{}, systolic.Stats{}, nil
	}
	grid, err := systolic.NewGrid(1, L, func(_, k int) systolic.Cell {
		return &cell{pat: pattern[k]}
	})
	if err != nil {
		return nil, systolic.Stats{}, err
	}
	// Text channel: character q reaches cell k at pulse q + k. Each
	// column is fed from the north with the appropriately delayed
	// character stream (the physical chip shifts characters cell to
	// cell; feeding each column the same stream delayed by k is the
	// same dataflow expressed through the engine's boundary).
	for k := 0; k < L; k++ {
		k := k
		if err := grid.Feed(systolic.North, k, func(p int) systolic.Token {
			q := p - k
			if q >= 0 && q < len(text) {
				return systolic.ValToken(text[q], systolic.Tag{Rel: "text", Tuple: q, Valid: true})
			}
			return systolic.Empty
		}); err != nil {
			return nil, systolic.Stats{}, err
		}
	}
	// Result channel: alignment p's TRUE token enters cell 0 at pulse p.
	if err := grid.Feed(systolic.West, 0, func(p int) systolic.Token {
		if p < nAlign {
			return systolic.FlagToken(true, systolic.Tag{Rel: "align", Tuple: p, Valid: true})
		}
		return systolic.Empty
	}); err != nil {
		return nil, systolic.Stats{}, err
	}
	matches := make([]bool, nAlign)
	got := make([]bool, nAlign)
	var collectErr error
	if err := grid.Drain(systolic.East, 0, func(pulse int, tok systolic.Token) {
		if !tok.HasFlag || collectErr != nil {
			return
		}
		// r_p is latched by cell L-1 at pulse p + 2(L-1) and forwarded
		// the following pulse.
		p := pulse - (2*L - 1)
		if p < 0 || p >= nAlign {
			collectErr = fmt.Errorf("patternmatch: unexpected result at pulse %d", pulse)
			return
		}
		if tok.Tag.Valid && tok.Tag.Tuple != p {
			collectErr = fmt.Errorf("patternmatch: schedule misalignment: positional %d, tag %d", p, tok.Tag.Tuple)
			return
		}
		matches[p] = tok.Flag
		got[p] = true
	}); err != nil {
		return nil, systolic.Stats{}, err
	}
	grid.Reset()
	grid.Run(nAlign + 2*L)
	if collectErr != nil {
		return nil, systolic.Stats{}, collectErr
	}
	for p, g := range got {
		if !g {
			return nil, systolic.Stats{}, fmt.Errorf("patternmatch: no result for alignment %d", p)
		}
	}
	return matches, grid.Stats(), nil
}

// MatchString runs the array on byte strings; '?' in the pattern is the
// wildcard. It returns the matching start positions.
func MatchString(pattern, text string) ([]int, systolic.Stats, error) {
	// Index byte-by-byte: `for i := range s` over a string visits rune
	// start offsets only, which would leave zero elements inside
	// multi-byte UTF-8 sequences (a bug found by FuzzMatchString).
	pat := make([]relation.Element, len(pattern))
	for i := 0; i < len(pattern); i++ {
		if pattern[i] == '?' {
			pat[i] = Wildcard
		} else {
			pat[i] = relation.Element(pattern[i])
		}
	}
	txt := make([]relation.Element, len(text))
	for i := 0; i < len(text); i++ {
		txt[i] = relation.Element(text[i])
	}
	bits, st, err := Match(pat, txt)
	if err != nil {
		return nil, st, err
	}
	var positions []int
	for p, ok := range bits {
		if ok {
			positions = append(positions, p)
		}
	}
	return positions, st, nil
}

// Reference is the brute-force specification used by tests.
func Reference(pattern, text []relation.Element) []bool {
	nAlign := len(text) - len(pattern) + 1
	if nAlign <= 0 {
		return []bool{}
	}
	out := make([]bool, nAlign)
	for p := range out {
		ok := true
		for k, pc := range pattern {
			if pc != Wildcard && text[p+k] != pc {
				ok = false
				break
			}
		}
		out[p] = ok
	}
	return out
}
