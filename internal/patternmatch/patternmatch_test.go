package patternmatch

import (
	"math/rand"
	"testing"
	"testing/quick"

	"systolicdb/internal/relation"
)

func TestMatchStringBasics(t *testing.T) {
	pos, st, err := MatchString("aba", "abababa")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 2, 4}
	if len(pos) != len(want) {
		t.Fatalf("positions = %v, want %v", pos, want)
	}
	for i := range want {
		if pos[i] != want[i] {
			t.Fatalf("positions = %v, want %v", pos, want)
		}
	}
	if st.Pulses == 0 {
		t.Error("no pulses recorded")
	}
}

func TestMatchStringNoMatch(t *testing.T) {
	pos, _, err := MatchString("xyz", "abababa")
	if err != nil {
		t.Fatal(err)
	}
	if len(pos) != 0 {
		t.Errorf("positions = %v, want none", pos)
	}
}

func TestWildcard(t *testing.T) {
	pos, _, err := MatchString("a?a", "abacada")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 2, 4}
	if len(pos) != len(want) {
		t.Fatalf("positions = %v, want %v", pos, want)
	}
	all, _, err := MatchString("???", "abcd")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Errorf("all-wildcard positions = %v, want 2 alignments", all)
	}
}

func TestPatternLongerThanText(t *testing.T) {
	bits, _, err := Match([]relation.Element{1, 2, 3}, []relation.Element{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(bits) != 0 {
		t.Errorf("bits = %v, want empty", bits)
	}
}

func TestEmptyPatternRejected(t *testing.T) {
	if _, _, err := Match(nil, []relation.Element{1}); err == nil {
		t.Error("empty pattern not rejected")
	}
}

func TestSingleCharPattern(t *testing.T) {
	bits, _, err := Match([]relation.Element{5}, []relation.Element{5, 6, 5})
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, false, true}
	for i := range want {
		if bits[i] != want[i] {
			t.Errorf("bits = %v, want %v", bits, want)
		}
	}
}

func TestMatchAgainstReferenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 50; trial++ {
		L := 1 + rng.Intn(5)
		N := L + rng.Intn(30)
		pat := make([]relation.Element, L)
		for i := range pat {
			if rng.Intn(6) == 0 {
				pat[i] = Wildcard
			} else {
				pat[i] = relation.Element(rng.Intn(3))
			}
		}
		text := make([]relation.Element, N)
		for i := range text {
			text[i] = relation.Element(rng.Intn(3))
		}
		got, _, err := Match(pat, text)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := Reference(pat, text)
		for p := range want {
			if got[p] != want[p] {
				t.Fatalf("trial %d: alignment %d = %v, want %v (pat=%v text=%v)",
					trial, p, got[p], want[p], pat, text)
			}
		}
	}
}

func TestMatchStringMultiByteText(t *testing.T) {
	// Regression for a bug found by FuzzMatchString: `for i := range s`
	// over a string visits rune starts only, so multi-byte UTF-8 text
	// used to leave zero-valued elements and produce phantom matches.
	pos, _, err := MatchString("\x00", "̨") // U+0328 is 2 bytes, no NUL
	if err != nil {
		t.Fatal(err)
	}
	if len(pos) != 0 {
		t.Errorf("NUL pattern matched inside a multi-byte rune at %v", pos)
	}
	pos, _, err = MatchString("é", "café")
	if err != nil {
		t.Fatal(err)
	}
	if len(pos) != 1 || pos[0] != 3 {
		t.Errorf("multi-byte pattern positions = %v, want [3]", pos)
	}
}

func TestThroughputOneAlignmentPerPulse(t *testing.T) {
	// Steady-state throughput claim: total pulses = alignments + 2L
	// (pipeline fill), so pulses grow by 1 per extra text character.
	pat := []relation.Element{1, 2}
	short := make([]relation.Element, 20)
	long := make([]relation.Element, 40)
	_, stShort, err := Match(pat, short)
	if err != nil {
		t.Fatal(err)
	}
	_, stLong, err := Match(pat, long)
	if err != nil {
		t.Fatal(err)
	}
	if stLong.Pulses-stShort.Pulses != 20 {
		t.Errorf("pulse growth %d for 20 extra characters, want 20 (1/pulse throughput)",
			stLong.Pulses-stShort.Pulses)
	}
}

func TestMatchQuickProperty(t *testing.T) {
	// Property: the array agrees with the reference on arbitrary inputs.
	f := func(patRaw, textRaw []uint8) bool {
		if len(patRaw) == 0 {
			patRaw = []uint8{1}
		}
		if len(patRaw) > 8 {
			patRaw = patRaw[:8]
		}
		if len(textRaw) > 64 {
			textRaw = textRaw[:64]
		}
		pat := make([]relation.Element, len(patRaw))
		for i, v := range patRaw {
			pat[i] = relation.Element(v % 4)
		}
		text := make([]relation.Element, len(textRaw))
		for i, v := range textRaw {
			text[i] = relation.Element(v % 4)
		}
		got, _, err := Match(pat, text)
		if err != nil {
			return false
		}
		want := Reference(pat, text)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
