// Benchmarks regenerating the paper's evaluation, one benchmark family per
// experiment of DESIGN.md §4. Absolute wall-clock numbers measure the
// *simulator*; the paper-relevant outputs are the custom metrics:
// pulses/op (the hardware latency in comparison intervals), util (processor
// utilization), and modeled-ms (the §8 technology model's wall-clock
// estimate for the simulated pulse count).
//
// Run with: go test -bench=. -benchmem
package systolicdb

import (
	"fmt"
	"testing"

	"systolicdb/internal/baseline"
	"systolicdb/internal/bitlevel"
	"systolicdb/internal/cells"
	"systolicdb/internal/comparison"
	"systolicdb/internal/decompose"
	"systolicdb/internal/dedup"
	"systolicdb/internal/division"
	"systolicdb/internal/hex"
	"systolicdb/internal/intersect"
	"systolicdb/internal/join"
	"systolicdb/internal/lptdisk"
	"systolicdb/internal/machine"
	"systolicdb/internal/patternmatch"
	"systolicdb/internal/perf"
	"systolicdb/internal/query"
	"systolicdb/internal/relation"
	"systolicdb/internal/treemachine"
	"systolicdb/internal/workload"
)

func reportSim(b *testing.B, pulses, cellSteps, activeSteps int) {
	b.Helper()
	if b.N > 0 {
		b.ReportMetric(float64(pulses)/float64(b.N), "pulses/op")
		if cellSteps > 0 {
			b.ReportMetric(float64(activeSteps)/float64(cellSteps), "util")
		}
		b.ReportMetric(perf.Conservative1980.PulseTime(pulses/b.N).Seconds()*1e3, "modeled-ms")
	}
}

// E1: the linear comparison array compares two m-element tuples in m pulses.
func BenchmarkLinearCompare(b *testing.B) {
	for _, m := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			tu := make(relation.Tuple, m)
			for k := range tu {
				tu[k] = relation.Element(k)
			}
			other := tu.Clone()
			var pulses int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, st, err := comparison.CompareTuples(tu, other)
				if err != nil {
					b.Fatal(err)
				}
				pulses += st.Pulses
			}
			reportSim(b, pulses, 0, 0)
		})
	}
}

// E2: the 2-D comparison array pipelines all |A||B| comparisons in time
// linear in |A|+|B|+m.
func BenchmarkComparison2D(b *testing.B) {
	for _, n := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			a, _ := workload.Uniform(1, n, 4, 8)
			c, _ := workload.Uniform(2, n, 4, 8)
			at, ct := a.Tuples(), c.Tuples()
			var pulses, cellSteps, active int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := comparison.Run2D(at, ct, nil, nil)
				if err != nil {
					b.Fatal(err)
				}
				pulses += res.Stats.Pulses
				cellSteps += res.Stats.CellSteps
				active += res.Stats.ActiveSteps
			}
			reportSim(b, pulses, cellSteps, active)
		})
	}
}

// E3: the intersection array across selectivities.
func BenchmarkIntersectArray(b *testing.B) {
	for _, overlap := range []float64{0.1, 0.5, 0.9} {
		b.Run(fmt.Sprintf("overlap=%.1f", overlap), func(b *testing.B) {
			a, c, err := workload.OverlapPair(3, 32, 3, overlap)
			if err != nil {
				b.Fatal(err)
			}
			var pulses int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := intersect.Intersection(a, c)
				if err != nil {
					b.Fatal(err)
				}
				pulses += res.Stats.Pulses
			}
			reportSim(b, pulses, 0, 0)
		})
	}
}

// E4: the difference array (same hardware, inverted output).
func BenchmarkDifferenceArray(b *testing.B) {
	a, c, err := workload.OverlapPair(4, 32, 3, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	var pulses int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := intersect.Difference(a, c)
		if err != nil {
			b.Fatal(err)
		}
		pulses += res.Stats.Pulses
	}
	reportSim(b, pulses, 0, 0)
}

// E5: the remove-duplicates array across duplication rates.
func BenchmarkRemoveDuplicatesArray(b *testing.B) {
	for _, rate := range []float64{0.0, 0.5, 0.9} {
		b.Run(fmt.Sprintf("dup=%.1f", rate), func(b *testing.B) {
			a, err := workload.WithDuplicates(5, 32, 3, rate)
			if err != nil {
				b.Fatal(err)
			}
			var pulses int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := dedup.RemoveDuplicates(a)
				if err != nil {
					b.Fatal(err)
				}
				pulses += res.Stats.Pulses
			}
			reportSim(b, pulses, 0, 0)
		})
	}
}

// E6: union and projection on the remove-duplicates array.
func BenchmarkUnionArray(b *testing.B) {
	a, c, err := workload.OverlapPair(6, 24, 3, 0.3)
	if err != nil {
		b.Fatal(err)
	}
	var pulses int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := dedup.Union(a, c)
		if err != nil {
			b.Fatal(err)
		}
		pulses += res.Stats.Pulses
	}
	reportSim(b, pulses, 0, 0)
}

func BenchmarkProjectionArray(b *testing.B) {
	a, err := workload.Uniform(7, 32, 4, 4) // small domain: many collisions
	if err != nil {
		b.Fatal(err)
	}
	var pulses int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := dedup.Project(a, []int{0, 1})
		if err != nil {
			b.Fatal(err)
		}
		pulses += res.Stats.Pulses
	}
	reportSim(b, pulses, 0, 0)
}

// E7: the join array across match factors, including the degenerate
// all-match case where |C| = |A||B|.
func BenchmarkJoinArray(b *testing.B) {
	for _, mf := range []float64{0.5, 2, 32} {
		b.Run(fmt.Sprintf("match=%g", mf), func(b *testing.B) {
			a, c, err := workload.JoinPair(8, 32, 32, 3, mf)
			if err != nil {
				b.Fatal(err)
			}
			spec := join.Spec{ACols: []int{0}, BCols: []int{0}}
			var pulses int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := join.Join(a, c, spec)
				if err != nil {
					b.Fatal(err)
				}
				pulses += res.Stats.Pulses
			}
			reportSim(b, pulses, 0, 0)
		})
	}
}

// E8: multi-column and θ joins.
func BenchmarkMultiColumnJoin(b *testing.B) {
	a, c, err := workload.JoinPair(9, 24, 24, 3, 2)
	if err != nil {
		b.Fatal(err)
	}
	spec := join.Spec{ACols: []int{0, 1}, BCols: []int{0, 1}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := join.Join(a, c, spec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkThetaJoin(b *testing.B) {
	a, c, err := workload.JoinPair(10, 24, 24, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := join.Theta(a, c, 0, 0, GT); err != nil {
			b.Fatal(err)
		}
	}
}

// E9: the division array.
func BenchmarkDivisionArray(b *testing.B) {
	for _, shape := range [][2]int{{8, 4}, {16, 8}} {
		b.Run(fmt.Sprintf("x=%d,y=%d", shape[0], shape[1]), func(b *testing.B) {
			a, c, err := workload.DivisionCase(11, shape[0], shape[1], 0.5)
			if err != nil {
				b.Fatal(err)
			}
			var pulses int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := division.DivideBinary(a, c)
				if err != nil {
					b.Fatal(err)
				}
				pulses += res.Stats.Pulses
			}
			reportSim(b, pulses, 0, 0)
		})
	}
}

// E10: bit-level versus word-level comparison arrays.
func BenchmarkWordVsBitLevel(b *testing.B) {
	a, _ := workload.Uniform(12, 12, 2, 16)
	c, _ := workload.Uniform(13, 12, 2, 16)
	at, ct := a.Tuples(), c.Tuples()
	b.Run("word", func(b *testing.B) {
		var pulses int
		for i := 0; i < b.N; i++ {
			res, err := comparison.Run2D(at, ct, nil, nil)
			if err != nil {
				b.Fatal(err)
			}
			pulses += res.Stats.Pulses
		}
		reportSim(b, pulses, 0, 0)
	})
	b.Run("bit", func(b *testing.B) {
		var pulses int
		for i := 0; i < b.N; i++ {
			res, err := bitlevel.Run2D(at, ct, 4, nil)
			if err != nil {
				b.Fatal(err)
			}
			pulses += res.Stats.Pulses
		}
		reportSim(b, pulses, 0, 0)
	})
}

// E11: §8 decomposition overhead as the physical array shrinks.
func BenchmarkDecomposition(b *testing.B) {
	a, _ := workload.Uniform(14, 48, 2, 4)
	c, _ := workload.Uniform(15, 48, 2, 4)
	at, ct := a.Tuples(), c.Tuples()
	for _, cap := range []int{48, 16, 8} {
		b.Run(fmt.Sprintf("cap=%d", cap), func(b *testing.B) {
			size := decompose.ArraySize{MaxA: cap, MaxB: cap}
			var pulses int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, st, err := decompose.TiledAccumulate(at, ct, nil, size)
				if err != nil {
					b.Fatal(err)
				}
				pulses += st.Pulses
			}
			reportSim(b, pulses, 0, 0)
		})
	}
}

// E11 ablation: tile shape at constant per-pass capacity. Decomposition
// overhead depends on how the fixed array's capacity is split between the
// A side and the B side; the pulses/op metric exposes the asymmetry.
func BenchmarkTileShapeAblation(b *testing.B) {
	a, _ := workload.Uniform(22, 64, 2, 4)
	c, _ := workload.Uniform(23, 64, 2, 4)
	at, ct := a.Tuples(), c.Tuples()
	for _, shape := range []decompose.ArraySize{
		{MaxA: 64, MaxB: 4}, {MaxA: 32, MaxB: 8}, {MaxA: 16, MaxB: 16}, {MaxA: 8, MaxB: 32}, {MaxA: 4, MaxB: 64},
	} {
		b.Run(fmt.Sprintf("%dx%d", shape.MaxA, shape.MaxB), func(b *testing.B) {
			var pulses int
			for i := 0; i < b.N; i++ {
				_, st, err := decompose.TiledAccumulate(at, ct, nil, shape)
				if err != nil {
					b.Fatal(err)
				}
				pulses += st.Pulses
			}
			reportSim(b, pulses, 0, 0)
		})
	}
}

// E14: utilization of the two-moving-streams array versus the §8
// fixed-relation variant.
func BenchmarkMovingVsFixed(b *testing.B) {
	a, _ := workload.Uniform(16, 24, 3, 4)
	c, _ := workload.Uniform(17, 24, 3, 4)
	at, ct := a.Tuples(), c.Tuples()
	b.Run("moving", func(b *testing.B) {
		var pulses, cellSteps, active int
		for i := 0; i < b.N; i++ {
			res, err := comparison.Run2D(at, ct, nil, nil)
			if err != nil {
				b.Fatal(err)
			}
			pulses += res.Stats.Pulses
			cellSteps += res.Stats.CellSteps
			active += res.Stats.ActiveSteps
		}
		reportSim(b, pulses, cellSteps, active)
	})
	b.Run("fixed", func(b *testing.B) {
		var pulses, cellSteps, active int
		for i := 0; i < b.N; i++ {
			res, err := comparison.RunFixed(at, ct, nil)
			if err != nil {
				b.Fatal(err)
			}
			pulses += res.Stats.Pulses
			cellSteps += res.Stats.CellSteps
			active += res.Stats.ActiveSteps
		}
		reportSim(b, pulses, cellSteps, active)
	})
}

// E15: a multi-operation transaction on the §9 crossbar machine.
func BenchmarkMachineTransaction(b *testing.B) {
	a, c, err := workload.JoinPair(18, 32, 32, 3, 1)
	if err != nil {
		b.Fatal(err)
	}
	cat := query.Catalog{"A": a, "B": c}
	plan := query.Project{
		Child: query.Join{L: query.Scan{Name: "A"}, R: query.Scan{Name: "B"},
			Spec: join.Spec{ACols: []int{0}, BCols: []int{0}}},
		Cols: []int{0, 1},
	}
	tasks, _, err := query.Compile(plan, cat)
	if err != nil {
		b.Fatal(err)
	}
	m, err := machine.Default1980(64)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Run(tasks); err != nil {
			b.Fatal(err)
		}
	}
}

// E16: the systolic intersection array versus Song's tree machine on the
// same workload.
func BenchmarkTreeMachineVsSystolic(b *testing.B) {
	a, c, err := workload.OverlapPair(19, 32, 2, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	at, ct := a.Tuples(), c.Tuples()
	b.Run("systolic", func(b *testing.B) {
		var pulses int
		for i := 0; i < b.N; i++ {
			_, st, err := intersect.RunAccumulated(at, ct, nil, nil)
			if err != nil {
				b.Fatal(err)
			}
			pulses += st.Pulses
		}
		reportSim(b, pulses, 0, 0)
	})
	b.Run("tree", func(b *testing.B) {
		var pulses int
		for i := 0; i < b.N; i++ {
			tr, err := treemachine.New(len(at))
			if err != nil {
				b.Fatal(err)
			}
			if err := tr.Load(at); err != nil {
				b.Fatal(err)
			}
			if _, err := tr.Intersect(ct, len(at)); err != nil {
				b.Fatal(err)
			}
			pulses += tr.Stats().Pulses
		}
		reportSim(b, pulses, 0, 0)
	})
}

// E17: systolic simulation versus conventional-host baselines. The
// simulator pays a large constant per simulated processor, so the host
// wins on wall-clock here; the §8 model (experiment E12) is what converts
// pulse counts into the hardware's wall-clock advantage.
func BenchmarkBaselineIntersection(b *testing.B) {
	a, c, err := workload.OverlapPair(20, 64, 2, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("systolic-sim", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := intersect.Intersection(a, c); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("host-hash", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := baseline.IntersectionHash(a, c); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("host-nested", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := baseline.IntersectionNested(a, c); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkBaselineJoin(b *testing.B) {
	a, c, err := workload.JoinPair(21, 64, 64, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	spec := baseline.JoinSpec{ACols: []int{0}, BCols: []int{0}}
	b.Run("host-hash", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := baseline.JoinPairsHash(a, c, spec); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("host-sortmerge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := baseline.JoinPairsSortMerge(a, c, 0, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("host-nested", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := baseline.JoinPairsNested(a, c, spec); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("systolic-sim", func(b *testing.B) {
		jspec := join.Spec{ACols: []int{0}, BCols: []int{0}}
		for i := 0; i < b.N; i++ {
			if _, err := join.Join(a, c, jspec); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E18: logic-per-track selection throughput.
func BenchmarkLPTDiskSelect(b *testing.B) {
	for _, n := range []int{100, 10000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			r, err := workload.Uniform(24, n, 2, 100)
			if err != nil {
				b.Fatal(err)
			}
			d, err := lptdisk.New(32, perf.Disk1980)
			if err != nil {
				b.Fatal(err)
			}
			if err := d.Store(r); err != nil {
				b.Fatal(err)
			}
			q := lptdisk.Query{{Col: 0, Op: cells.LT, Value: 50}}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := d.Select(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E19: the pattern-match chip at one alignment per pulse.
func BenchmarkPatternMatch(b *testing.B) {
	text := make([]relation.Element, 512)
	for i := range text {
		text[i] = relation.Element(i % 5)
	}
	for _, L := range []int{4, 16} {
		b.Run(fmt.Sprintf("L=%d", L), func(b *testing.B) {
			pat := make([]relation.Element, L)
			for i := range pat {
				pat[i] = relation.Element(i % 5)
			}
			var pulses int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, st, err := patternmatch.Match(pat, text)
				if err != nil {
					b.Fatal(err)
				}
				pulses += st.Pulses
			}
			reportSim(b, pulses, 0, 0)
		})
	}
}

// E20: the hexagonal array on dense and band matrices.
func BenchmarkHexMultiply(b *testing.B) {
	mk := func(n int, band bool) [][]relation.Element {
		m := make([][]relation.Element, n)
		for i := range m {
			m[i] = make([]relation.Element, n)
			for j := range m[i] {
				d := i - j
				if d < 0 {
					d = -d
				}
				if band && d > 1 {
					continue
				}
				m[i][j] = relation.Element(i + j + 1)
			}
		}
		return m
	}
	b.Run("dense8", func(b *testing.B) {
		m := mk(8, false)
		var pulses int
		for i := 0; i < b.N; i++ {
			_, st, err := hex.Multiply(m, m)
			if err != nil {
				b.Fatal(err)
			}
			pulses += st.Pulses
		}
		reportSim(b, pulses, 0, 0)
	})
	b.Run("band16", func(b *testing.B) {
		m := mk(16, true)
		var pulses int
		for i := 0; i < b.N; i++ {
			_, st, err := hex.Multiply(m, m)
			if err != nil {
				b.Fatal(err)
			}
			pulses += st.Pulses
		}
		reportSim(b, pulses, 0, 0)
	})
}

// §6.3.2 ablation: preloaded vs streamed comparison operators.
func BenchmarkPreloadedVsStreamedTheta(b *testing.B) {
	a, c, err := workload.JoinPair(25, 32, 32, 1, 2)
	if err != nil {
		b.Fatal(err)
	}
	aK, cK := join.Keys(a, []int{0}), join.Keys(c, []int{0})
	b.Run("preloaded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := join.RunT(aK, cK, []cells.Op{cells.LE}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("streamed", func(b *testing.B) {
		opFor := func(_, _ int) cells.Op { return cells.LE }
		for i := 0; i < b.N; i++ {
			if _, _, err := join.RunTDynamic(aK, cK, 1, opFor); err != nil {
				b.Fatal(err)
			}
		}
	})
}
