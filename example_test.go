package systolicdb_test

import (
	"fmt"
	"log"

	"systolicdb"
)

func buildPair() (*systolicdb.Relation, *systolicdb.Relation) {
	dom := systolicdb.IntDomain("example")
	schema, err := systolicdb.NewSchema(
		systolicdb.Column{Name: "x", Domain: dom},
		systolicdb.Column{Name: "y", Domain: dom},
	)
	if err != nil {
		log.Fatal(err)
	}
	a, err := systolicdb.NewRelation(schema, []systolicdb.Tuple{{1, 1}, {2, 2}, {3, 3}})
	if err != nil {
		log.Fatal(err)
	}
	b, err := systolicdb.NewRelation(schema, []systolicdb.Tuple{{2, 2}, {4, 4}})
	if err != nil {
		log.Fatal(err)
	}
	return a, b
}

// Intersection on the systolic intersection array (paper §4, Figure 4-1).
func ExampleIntersect() {
	a, b := buildPair()
	res, err := systolicdb.Intersect(a, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Relation)
	// Output:
	// x | y
	// 2 | 2
}

// Union via remove-duplicates(A+B) (paper §5).
func ExampleUnion() {
	a, b := buildPair()
	res, err := systolicdb.Union(a, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Relation.Cardinality(), "distinct tuples")
	// Output:
	// 4 distinct tuples
}

// A single-column equi-join on the join array (paper §6); the redundant
// join column of B is removed.
func ExampleEquiJoin() {
	a, b := buildPair()
	res, err := systolicdb.EquiJoin(a, b, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Relation)
	// Output:
	// x | y | b_y
	// 2 | 2 | 2
}

// Relational division on the dividend/divisor array pair (paper §7).
func ExampleDivide() {
	xd := systolicdb.IntDomain("x")
	yd := systolicdb.IntDomain("y")
	aSchema, _ := systolicdb.NewSchema(
		systolicdb.Column{Name: "x", Domain: xd},
		systolicdb.Column{Name: "y", Domain: yd},
	)
	bSchema, _ := systolicdb.NewSchema(systolicdb.Column{Name: "y", Domain: yd})
	a, _ := systolicdb.NewRelation(aSchema, []systolicdb.Tuple{
		{1, 10}, {1, 20}, {2, 10},
	})
	b, _ := systolicdb.NewRelation(bSchema, []systolicdb.Tuple{{10}, {20}})
	res, err := systolicdb.Divide(a, b, []int{0}, []int{1}, []int{0})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Relation)
	// Output:
	// x
	// 1
}

// The linear comparison array of §3.1: equality in exactly m pulses.
func ExampleCompare() {
	eq, stats, err := systolicdb.Compare(systolicdb.Tuple{1, 2, 3}, systolicdb.Tuple{1, 2, 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(eq, stats.Pulses)
	// Output:
	// true 3
}

// The Foster-Kung pattern-match chip (§8): streaming search with '?'
// wildcards.
func ExampleMatchPattern() {
	pos, _, err := systolicdb.MatchPattern("s?s", "systolic systems")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(pos)
	// Output:
	// [0 9]
}
