// Package systolicdb is a faithful software reproduction of the systolic
// (VLSI) arrays for relational database operations of H. T. Kung and Philip
// L. Lehman (CMU-CS-80-114, SIGMOD 1980).
//
// Every relational operation is executed by a cycle-accurate simulation of
// the corresponding systolic processor array from the paper:
//
//   - Intersect / Difference — the intersection array of §4 (a 2-D
//     comparison array plus a linear accumulation array);
//   - RemoveDuplicates / Union / Project — the remove-duplicates array of
//     §5 (the same hardware with triangle-masked initial inputs);
//   - Join (equi, multi-column, θ) — the join array of §6;
//   - Divide — the dividend/divisor array pair of §7;
//   - Compare — the linear tuple-comparison array of §3.1.
//
// Results carry simulation statistics (pulses, processor activations,
// utilization) and a modelled wall-clock time under the paper's §8 NMOS
// technology parameters. Fixed-size physical arrays with §8 problem
// decomposition are available through Device; the §9 integrated machine
// (crossbar switch, memories, disk, several systolic devices) is available
// through Machine and the query plan compiler.
//
// Relations follow the paper's data model (§2): tuples of integer-encoded
// elements, with Domain providing the reversible encodings for strings,
// booleans and dates, and union-compatibility enforced where the paper
// requires it.
package systolicdb

import (
	"time"

	"systolicdb/internal/cells"
	"systolicdb/internal/comparison"
	"systolicdb/internal/decompose"
	"systolicdb/internal/dedup"
	"systolicdb/internal/division"
	"systolicdb/internal/intersect"
	"systolicdb/internal/join"
	"systolicdb/internal/lptdisk"
	"systolicdb/internal/machine"
	"systolicdb/internal/patternmatch"
	"systolicdb/internal/perf"
	"systolicdb/internal/query"
	"systolicdb/internal/relation"
	"systolicdb/internal/systolic"
)

// Data-model types (paper §2).
type (
	// Element is a single integer-encoded value (§2.3).
	Element = relation.Element
	// Tuple is an ordered sequence of elements.
	Tuple = relation.Tuple
	// Schema describes the columns of a relation.
	Schema = relation.Schema
	// Column is one attribute: a name and an underlying domain.
	Column = relation.Column
	// Domain is an underlying domain with a reversible integer encoding.
	Domain = relation.Domain
	// Relation is a multi-relation: an ordered list of tuples, duplicates
	// permitted (§2.5).
	Relation = relation.Relation
)

// Domain constructors.
var (
	// IntDomain returns a domain of integers encoded as themselves.
	IntDomain = relation.IntDomain
	// DictDomain returns a domain that interns strings.
	DictDomain = relation.DictDomain
	// BoolDomain returns a domain encoding booleans as 0/1.
	BoolDomain = relation.BoolDomain
	// DateDomain returns a domain encoding dates as days since epoch.
	DateDomain = relation.DateDomain
)

// NewSchema builds a schema from columns; see relation.NewSchema.
func NewSchema(cols ...Column) (*Schema, error) { return relation.NewSchema(cols...) }

// NewRelation builds a relation over a schema; see relation.NewRelation.
func NewRelation(s *Schema, tuples []Tuple) (*Relation, error) {
	return relation.NewRelation(s, tuples)
}

// Op is a θ-join comparison operator (§6.3.2).
type Op = cells.Op

// θ-join operators.
const (
	EQ = cells.EQ
	NE = cells.NE
	LT = cells.LT
	LE = cells.LE
	GT = cells.GT
	GE = cells.GE
)

// JoinSpec selects the join columns and per-column operators (§6.3).
type JoinSpec = join.Spec

// Stats summarises a systolic simulation run.
type Stats struct {
	// Pulses is the number of synchronous array pulses executed.
	Pulses int
	// Cells is the number of processors in the array.
	Cells int
	// CellSteps is Pulses x Cells.
	CellSteps int
	// ActiveSteps counts cell-pulses with work present.
	ActiveSteps int
	// Utilization is ActiveSteps / CellSteps (§8 discusses why the
	// two-moving-streams arrays sit near 1/2).
	Utilization float64
	// ModeledTime is the run's wall-clock time under the paper's
	// conservative 1980 NMOS technology (§8): one pulse per comparison
	// interval.
	ModeledTime time.Duration
	// Tiles counts §8 decomposition passes (1 when the problem fit the
	// array; 0 for degenerate empty runs).
	Tiles int
}

func newStats(s systolic.Stats) Stats {
	return Stats{
		Pulses:      s.Pulses,
		Cells:       s.Cells,
		CellSteps:   s.CellSteps,
		ActiveSteps: s.ActiveSteps,
		Utilization: s.Utilization(),
		ModeledTime: perf.Conservative1980.PulseTime(s.Pulses),
		Tiles:       min(1, s.Pulses),
	}
}

func newTiledStats(s decompose.Stats) Stats {
	out := Stats{
		Pulses:      s.Pulses,
		CellSteps:   s.CellSteps,
		ActiveSteps: s.ActiveSteps,
		ModeledTime: perf.Conservative1980.PulseTime(s.Pulses),
		Tiles:       s.Tiles,
	}
	if s.CellSteps > 0 {
		out.Utilization = float64(s.ActiveSteps) / float64(s.CellSteps)
	}
	return out
}

// Result is the outcome of a relational operation: the output relation and
// the simulation statistics of the array run that produced it.
type Result struct {
	Relation *Relation
	Stats    Stats
}

// Compare tests two tuples for equality on the linear comparison array of
// §3.1 (m processors, m pulses).
func Compare(a, b Tuple) (bool, Stats, error) {
	eq, st, err := comparison.CompareTuples(a, b)
	return eq, newStats(st), err
}

// Intersect computes A ∩ B on the intersection array (§4). The relations
// must be union-compatible.
func Intersect(a, b *Relation) (*Result, error) {
	res, err := intersect.Intersection(a, b)
	if err != nil {
		return nil, err
	}
	return &Result{Relation: res.Rel, Stats: newStats(res.Stats)}, nil
}

// Difference computes A - B on the intersection array with the inverted
// output of §4.3.
func Difference(a, b *Relation) (*Result, error) {
	res, err := intersect.Difference(a, b)
	if err != nil {
		return nil, err
	}
	return &Result{Relation: res.Rel, Stats: newStats(res.Stats)}, nil
}

// RemoveDuplicates turns a multi-relation into a relation on the
// remove-duplicates array (§5), keeping the first occurrence of each tuple.
func RemoveDuplicates(a *Relation) (*Result, error) {
	res, err := dedup.RemoveDuplicates(a)
	if err != nil {
		return nil, err
	}
	return &Result{Relation: res.Rel, Stats: newStats(res.Stats)}, nil
}

// Union computes A ∪ B as remove-duplicates(A + B) (§5).
func Union(a, b *Relation) (*Result, error) {
	res, err := dedup.Union(a, b)
	if err != nil {
		return nil, err
	}
	return &Result{Relation: res.Rel, Stats: newStats(res.Stats)}, nil
}

// Project projects A onto the given column indices and removes duplicates
// on the remove-duplicates array (§5).
func Project(a *Relation, cols []int) (*Result, error) {
	res, err := dedup.Project(a, cols)
	if err != nil {
		return nil, err
	}
	return &Result{Relation: res.Rel, Stats: newStats(res.Stats)}, nil
}

// ProjectNames is Project with columns selected by name.
func ProjectNames(a *Relation, names []string) (*Result, error) {
	res, err := dedup.ProjectNames(a, names)
	if err != nil {
		return nil, err
	}
	return &Result{Relation: res.Rel, Stats: newStats(res.Stats)}, nil
}

// Join computes the join of A and B under spec on the join array (§6).
// Equi-joins omit the redundant join columns of B; θ-joins keep both sides'
// columns.
func Join(a, b *Relation, spec JoinSpec) (*Result, error) {
	res, err := join.Join(a, b, spec)
	if err != nil {
		return nil, err
	}
	return &Result{Relation: res.Rel, Stats: newStats(res.Stats)}, nil
}

// EquiJoin is the single-column equi-join of §6.1.
func EquiJoin(a, b *Relation, aCol, bCol int) (*Result, error) {
	return Join(a, b, JoinSpec{ACols: []int{aCol}, BCols: []int{bCol}})
}

// ThetaJoin is the single-column θ-join of §6.3.2.
func ThetaJoin(a, b *Relation, aCol, bCol int, op Op) (*Result, error) {
	return Join(a, b, JoinSpec{ACols: []int{aCol}, BCols: []int{bCol}, Ops: []Op{op}})
}

// Divide computes A ÷ B over column groups on the division array (§7):
// aQuot are the quotient columns of A, aDiv the divided columns, bCols the
// corresponding divisor columns. Multi-column groups are reduced to the
// restricted binary/unary array by composite interning; see DivideHW for
// the multi-column hardware array.
func Divide(a, b *Relation, aQuot, aDiv, bCols []int) (*Result, error) {
	res, err := division.Divide(a, b, aQuot, aDiv, bCols)
	if err != nil {
		return nil, err
	}
	st := res.Stats
	st.Pulses += res.Dedup.Pulses // include the x-identification pass
	return &Result{Relation: res.Rel, Stats: newStats(st)}, nil
}

// DivideHW computes A ÷ B on the multi-column hardware division array —
// §7's "extension from this to the general case is straightforward (as in
// the preceding section on the join)" realised with one processor column
// per group column and frame-coherent divisor groups. Results equal Divide;
// the dataflow is the hardware the sentence implies.
func DivideHW(a, b *Relation, aQuot, aDiv, bCols []int) (*Result, error) {
	res, err := division.DivideHW(a, b, aQuot, aDiv, bCols)
	if err != nil {
		return nil, err
	}
	st := res.Stats
	st.Pulses += res.Dedup.Pulses
	return &Result{Relation: res.Rel, Stats: newStats(st)}, nil
}

// Device is a fixed-size physical systolic array. Problems that do not fit
// are decomposed into tiles per §8 and executed pass by pass; results are
// identical to the unbounded arrays.
type Device struct {
	size decompose.ArraySize
}

// NewDevice builds a device that accepts at most maxA tuples of A and maxB
// tuples of B per pass.
func NewDevice(maxA, maxB int) (*Device, error) {
	size := decompose.ArraySize{MaxA: maxA, MaxB: maxB}
	if maxA <= 0 || maxB <= 0 {
		return nil, errSize(maxA, maxB)
	}
	return &Device{size: size}, nil
}

func errSize(maxA, maxB int) error {
	_, _, err := decompose.TiledT(nil, nil, nil, decompose.ArraySize{MaxA: maxA, MaxB: maxB})
	return err
}

// Tiles returns the number of passes an nA x nB problem needs on this
// device.
func (d *Device) Tiles(nA, nB int) int { return d.size.Tiles(nA, nB) }

// Intersect computes A ∩ B with decomposition.
func (d *Device) Intersect(a, b *Relation) (*Result, error) {
	rel, st, err := decompose.Intersection(a, b, d.size)
	if err != nil {
		return nil, err
	}
	return &Result{Relation: rel, Stats: newTiledStats(st)}, nil
}

// Difference computes A - B with decomposition.
func (d *Device) Difference(a, b *Relation) (*Result, error) {
	rel, st, err := decompose.Difference(a, b, d.size)
	if err != nil {
		return nil, err
	}
	return &Result{Relation: rel, Stats: newTiledStats(st)}, nil
}

// RemoveDuplicates removes duplicates with decomposition.
func (d *Device) RemoveDuplicates(a *Relation) (*Result, error) {
	rel, st, err := decompose.RemoveDuplicates(a, d.size)
	if err != nil {
		return nil, err
	}
	return &Result{Relation: rel, Stats: newTiledStats(st)}, nil
}

// Join computes a join with decomposition.
func (d *Device) Join(a, b *Relation, spec JoinSpec) (*Result, error) {
	if err := spec.Validate(a, b); err != nil {
		return nil, err
	}
	t, st, err := decompose.TiledJoinT(join.Keys(a, spec.ACols), join.Keys(b, spec.BCols), spec.Ops, d.size)
	if err != nil {
		return nil, err
	}
	rel, _, err := join.Materialize(a, b, spec, t)
	if err != nil {
		return nil, err
	}
	return &Result{Relation: rel, Stats: newTiledStats(st)}, nil
}

// Machine-level API (§9). The types are aliases of the internal machine and
// query packages, reachable only through this package.
type (
	// Machine is the §9 integrated systolic database system.
	Machine = machine.Machine
	// MachineConfig configures memories, devices, technology and disk.
	MachineConfig = machine.Config
	// MachineDevice describes one systolic device on the crossbar.
	MachineDevice = machine.DeviceConfig
	// Task is one step of a machine transaction.
	Task = machine.Task
	// TransactionResult is the outcome of running a transaction.
	TransactionResult = machine.Result

	// PlanNode is a relational-algebra plan node.
	PlanNode = query.Node
	// Catalog maps base-relation names to relations.
	Catalog = query.Catalog

	// DiskPredicate is one comparison a logic-per-track disk head can
	// evaluate on the fly (§9, reference [8]).
	DiskPredicate = lptdisk.Predicate
	// DiskQuery is a conjunction of disk-head predicates.
	DiskQuery = lptdisk.Query
)

// Plan node constructors (aliases of the query package's node types).
type (
	// ScanPlan reads a named base relation.
	ScanPlan = query.Scan
	// IntersectPlan is L ∩ R.
	IntersectPlan = query.Intersect
	// DifferencePlan is L - R.
	DifferencePlan = query.Difference
	// UnionPlan is L ∪ R.
	UnionPlan = query.Union
	// DedupPlan removes duplicates.
	DedupPlan = query.Dedup
	// ProjectPlan projects onto columns.
	ProjectPlan = query.Project
	// JoinPlan joins under a spec.
	JoinPlan = query.Join
	// DividePlan divides over column groups.
	DividePlan = query.Divide
	// SelectPlan filters through a logic-per-track disk query (§9); on
	// the machine its child must be a ScanPlan, because the selection
	// happens at the disk heads during the load.
	SelectPlan = query.Select
)

// NewMachine1980 builds a Figure 9-1-shaped machine (three memories; one
// intersection, join and division device of the given per-pass capacity)
// with the paper's conservative 1980 technology and disk.
func NewMachine1980(arraySize int) (*Machine, error) {
	return machine.Default1980(arraySize)
}

// NewMachine builds a machine from an explicit configuration.
func NewMachine(cfg MachineConfig) (*Machine, error) { return machine.New(cfg) }

// ExecutePlan evaluates a plan on the host, one systolic array at a time.
func ExecutePlan(n PlanNode, cat Catalog) (*Relation, error) { return query.Execute(n, cat) }

// CompilePlan lowers a plan to a machine transaction; the returned name
// identifies the final output relation in the transaction result.
func CompilePlan(n PlanNode, cat Catalog) ([]Task, string, error) { return query.Compile(n, cat) }

// OptimizePlan rewrites a plan into an equivalent one better suited to the
// machine: selections sink toward scans (becoming logic-per-track disk
// filters), adjacent projections compose, and redundant duplicate-removal
// passes disappear. Results are provably unchanged (see the rule list on
// query.Optimize).
func OptimizePlan(n PlanNode, cat Catalog) (PlanNode, error) { return query.Optimize(n, cat) }

// ParsePlan parses the textual plan algebra used by cmd/systolicdb, e.g.
// "project(join(scan(A), scan(B), 0=0), 0)".
func ParsePlan(src string) (PlanNode, error) { return query.Parse(src) }

// MatchPattern runs the Foster-Kung pattern-match chip (§8: "a scaled-down
// version of the comparison array") on byte strings; '?' in the pattern
// matches any character. It returns the matching start positions and the
// array's simulation statistics.
func MatchPattern(pattern, text string) ([]int, Stats, error) {
	pos, st, err := patternmatch.MatchString(pattern, text)
	return pos, newStats(st), err
}
